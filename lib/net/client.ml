(* Wire-protocol client: single connection + bounded pool with retry.

   The recoverable/fatal split drives the pool's loop: [Rejected],
   [Draining] and [Closed] are the server (or the network) asking the
   client to try again later — the pool sleeps on the decorrelated-jitter
   curve, seeded with the server's retry hint, and goes around. [Timeout]
   is deliberately fatal: the caller's per-query allowance is spent, and a
   retry behind its back would double-spend the deadline the server is
   carefully accounting against. A timed-out or errored connection is
   always discarded — a late reply arriving on a reused connection would be
   attributed to the wrong request. *)

module E = Svr_storage.Storage_error

type error =
  | Rejected of { reason : string; retry_after_ms : float }
  | Draining of { retry_after_ms : float }
  | Closed of string
  | Timeout
  | Remote of string
  | Protocol of string

let recoverable = function
  | Rejected _ | Draining _ | Closed _ -> true
  | Timeout | Remote _ | Protocol _ -> false

let error_to_string = function
  | Rejected { reason; retry_after_ms } ->
      Printf.sprintf "rejected (%s; retry after %.0fms)" reason retry_after_ms
  | Draining { retry_after_ms } ->
      Printf.sprintf "server draining (retry after %.0fms)" retry_after_ms
  | Closed m -> Printf.sprintf "connection closed (%s)" m
  | Timeout -> "query timed out"
  | Remote m -> Printf.sprintf "server error: %s" m
  | Protocol m -> Printf.sprintf "protocol error: %s" m

module Conn = struct
  type t = {
    fd : Unix.file_descr;
    dec : Wire.decoder;
    buf : Bytes.t;
    mutable next_id : int;
    mutable dead : bool;
  }

  let alive t = not t.dead

  let close t =
    if not t.dead then t.dead <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()

  let write_frame t s =
    try
      let n = String.length s in
      let rec go off =
        if off < n then go (off + Unix.write_substring t.fd s off (n - off))
      in
      Ok (go 0)
    with Unix.Unix_error (e, _, _) ->
      t.dead <- true;
      Error (Closed (Unix.error_message e))

  (* one CRC-verified frame payload off the wire. [timeout_ms] is an
     absolute deadline for the *whole* receive: SO_RCVTIMEO only bounds one
     read syscall, so it is re-armed with the remaining allowance before
     each read — a server dribbling one byte per timeout window cannot
     stretch the receive past the deadline. *)
  let read_payload t ?timeout_ms () =
    let deadline =
      match timeout_ms with
      | Some ms -> Some (Unix.gettimeofday () +. (ms /. 1000.0))
      | None ->
          (* clear any SO_RCVTIMEO left by an earlier bounded receive *)
          (try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO 0.0
           with Unix.Unix_error _ -> ());
          None
    in
    let rec loop () =
      match Wire.next t.dec with
      | Some p -> Ok p
      | None ->
          let expired =
            match deadline with
            | None -> false
            | Some d ->
                let remaining = d -. Unix.gettimeofday () in
                remaining <= 0.0
                || begin
                     (* floor keeps a sub-ms remainder from truncating to a
                        zero timeval, which would mean "wait forever" *)
                     (try
                        Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO
                          (Float.max remaining 0.001)
                      with Unix.Unix_error _ -> ());
                     false
                   end
          in
          if expired then begin
            t.dead <- true;
            Error Timeout
          end
          else (
            match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
            | 0 ->
                t.dead <- true;
                Error (Closed "eof")
            | n ->
                Wire.feed t.dec t.buf ~len:n;
                loop ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                t.dead <- true;
                Error Timeout
            | exception Unix.Unix_error (e, _, _) ->
                t.dead <- true;
                Error (Closed (Unix.error_message e)))
    in
    match loop () with
    | Ok p -> (
        match Wire.response_of_payload p with
        | r -> Ok r
        | exception E.Error (_, msg) ->
            t.dead <- true;
            Error (Protocol msg))
    | Error _ as e -> e

  let connect ~host ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          failwith ("Client.connect: " ^ m))
        fmt
    in
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    (match
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
     with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
        fail "%s:%d: %s" host port (Unix.error_message e));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    let t =
      { fd; dec = Wire.decoder (); buf = Bytes.create 8192; next_id = 0;
        dead = false }
    in
    (match write_frame t (Wire.encode_request (Wire.Hello { version = Wire.version })) with
    | Ok () -> ()
    | Error e -> fail "hello: %s" (error_to_string e));
    (match read_payload t ~timeout_ms:5000.0 () with
    | Ok (Wire.Hello_ack { version = v }) when v = Wire.version -> ()
    | Ok (Wire.Hello_ack { version = v }) ->
        fail "server speaks protocol version %d, this client %d" v Wire.version
    | Ok (Wire.Drain _) -> fail "server is draining"
    | Ok _ -> fail "unexpected frame in place of hello-ack"
    | Error e -> fail "handshake: %s" (error_to_string e));
    t

  let send t ~id ?(mode = Svr_core.Types.Conjunctive)
      ?(cls = Svr_serve.Admission.Query) ?deadline_ms ?sim_ms ?pages ?blocks
      terms ~k =
    if t.dead then Error (Closed "connection already dead")
    else
      write_frame t
        (Wire.encode_request
           (Wire.Query
              { id; mode; cls; k; deadline_ms; sim_ms; pages; blocks; terms }))

  let recv t ?timeout_ms () =
    if t.dead then Error (Closed "connection already dead")
    else
      match read_payload t ?timeout_ms () with
      | Ok (Wire.Reply { id; outcome }) -> Ok (id, outcome)
      | Ok (Wire.Drain { retry_after_ms }) ->
          t.dead <- true;
          Error (Draining { retry_after_ms })
      | Ok (Wire.Hello_ack _) ->
          t.dead <- true;
          Error (Protocol "unexpected hello-ack mid-session")
      | Error _ as e -> e

  let query t ?timeout_ms ?mode ?cls ?deadline_ms ?sim_ms ?pages ?blocks terms
      ~k =
    let id = t.next_id in
    t.next_id <- id + 1;
    match send t ~id ?mode ?cls ?deadline_ms ?sim_ms ?pages ?blocks terms ~k with
    | Error _ as e -> e
    | Ok () -> (
        match recv t ?timeout_ms () with
        | Error _ as e -> e
        | Ok (rid, _) when rid <> id ->
            (* only possible if the caller mixed [send] and [query] on one
               connection — the ids no longer correlate *)
            t.dead <- true;
            Error (Protocol (Printf.sprintf "reply id %d, want %d" rid id))
        | Ok (_, Wire.Rejected { reason; retry_after_ms }) ->
            Error (Rejected { reason; retry_after_ms })
        | Ok (_, Wire.Server_error m) -> Error (Remote m)
        | Ok (_, outcome) -> Ok outcome)

  let goodbye t =
    if not t.dead then
      ignore (write_frame t (Wire.encode_request Wire.Goodbye));
    close t
end

(* -- pool ------------------------------------------------------------------ *)

type t = {
  host : string;
  port : int;
  size : int;
  query_timeout_ms : float option;
  retries : int;
  retry_base_ms : float;
  retry_cap_ms : float;
  mu : Mutex.t;
  cv : Condition.t;
  idle : Conn.t Queue.t;
  mutable open_ : int; (* idle + leased *)
  mutable closed : bool;
  mutable sheds : int;
  mutable reconnects : int;
}

let create ?(size = 4) ?query_timeout_ms ?(retries = 3) ?(retry_base_ms = 5.0)
    ?(retry_cap_ms = 1000.0) ~host ~port () =
  if size < 1 then invalid_arg "Client.create: size must be >= 1";
  if retries < 0 then invalid_arg "Client.create: retries must be >= 0";
  {
    host;
    port;
    size;
    query_timeout_ms;
    retries;
    retry_base_ms;
    retry_cap_ms;
    mu = Mutex.create ();
    cv = Condition.create ();
    idle = Queue.create ();
    open_ = 0;
    closed = false;
    sheds = 0;
    reconnects = 0;
  }

let sheds t = Mutex.protect t.mu (fun () -> t.sheds)
let reconnects t = Mutex.protect t.mu (fun () -> t.reconnects)

(* lease an existing idle connection or the right to open a new one *)
let acquire t =
  Mutex.protect t.mu (fun () ->
      let rec go () =
        if t.closed then Error (Closed "pool closed")
        else
          match Queue.take_opt t.idle with
          | Some c -> Ok (`Conn c)
          | None ->
              if t.open_ < t.size then begin
                t.open_ <- t.open_ + 1;
                Ok `Fresh
              end
              else begin
                Condition.wait t.cv t.mu;
                go ()
              end
      in
      go ())

let unlease t = (* failed to produce a usable connection for this lease *)
  Mutex.protect t.mu (fun () ->
      t.open_ <- t.open_ - 1;
      Condition.signal t.cv)

let release t c =
  let close_now =
    Mutex.protect t.mu (fun () ->
        if t.closed || not (Conn.alive c) then begin
          t.open_ <- t.open_ - 1;
          Condition.signal t.cv;
          true
        end
        else begin
          Queue.push c t.idle;
          Condition.signal t.cv;
          false
        end)
  in
  if close_now then Conn.close c

let discard t c =
  Conn.close c;
  Mutex.protect t.mu (fun () ->
      t.open_ <- t.open_ - 1;
      t.reconnects <- t.reconnects + 1;
      Condition.signal t.cv)

let count_shed t = Mutex.protect t.mu (fun () -> t.sheds <- t.sheds + 1)

let query t ?mode ?cls ?deadline_ms ?sim_ms ?pages ?blocks terms ~k =
  let attempt () =
    match acquire t with
    | Error _ as e -> e
    | Ok lease -> (
        let conn =
          match lease with
          | `Conn c -> Ok c
          | `Fresh -> (
              match Conn.connect ~host:t.host ~port:t.port () with
              | c -> Ok c
              | exception Failure m ->
                  unlease t;
                  Error (Closed m))
        in
        match conn with
        | Error _ as e -> e
        | Ok c -> (
            match
              Conn.query c ?timeout_ms:t.query_timeout_ms ?mode ?cls
                ?deadline_ms ?sim_ms ?pages ?blocks terms ~k
            with
            | Ok _ as ok ->
                release t c;
                ok
            | Error (Rejected _ as e) ->
                (* the connection is healthy; the server shed the request *)
                release t c;
                count_shed t;
                Error e
            | Error e ->
                discard t c;
                Error e))
  in
  let rec go budget prev_ms =
    match attempt () with
    | Ok _ as ok -> ok
    | Error e when recoverable e && budget > 0 ->
        (* the server's hint seeds the jitter curve: sleep at least what it
           asked, spread out so synchronized clients do not re-arrive as a
           thundering herd *)
        let hint =
          match e with
          | Rejected { retry_after_ms; _ } | Draining { retry_after_ms; _ } ->
              retry_after_ms
          | _ -> 0.0
        in
        let hint = if Float.is_finite hint then hint else t.retry_cap_ms in
        let sleep =
          Svr_storage.Retry.jitter_ms ~base_ms:t.retry_base_ms
            ~cap_ms:t.retry_cap_ms
            ~prev_ms:(Float.max hint prev_ms)
        in
        Thread.delay (sleep /. 1000.0);
        go (budget - 1) sleep
    | Error _ as e -> e
  in
  go t.retries 0.0

let close t =
  let idle =
    Mutex.protect t.mu (fun () ->
        t.closed <- true;
        let cs = Queue.fold (fun acc c -> c :: acc) [] t.idle in
        Queue.clear t.idle;
        t.open_ <- t.open_ - List.length cs;
        Condition.broadcast t.cv;
        cs)
  in
  List.iter Conn.goodbye idle
