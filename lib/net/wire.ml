(* The SVR wire protocol.

   Framing mirrors the WAL record format ([Svr_storage.Wal]): every frame is
   self-delimiting and CRC32-guarded so a torn, truncated, or bit-flipped
   byte sequence surfaces as a typed [Storage_error.Error (Corrupt, _)] at
   the decoder instead of a misparse. A stream has no epoch header, so the
   frame is [magic | varint len | u32-be crc | payload]; the magic byte
   doubles as protocol dispatch — it is not an ASCII letter, so the first
   byte of a connection distinguishes a binary session from an HTTP "GET
   /metrics" probe on the same port.

   The incremental decoder parses the varint length by hand rather than via
   [Varint.read]: mid-stream a truncated varint means "need more bytes", not
   corruption, and only the decoder can tell the two apart. The length is
   range-checked against [max_frame] *during* the parse, before any
   allocation sized by attacker-controlled bytes. *)

module E = Svr_storage.Storage_error
module Crc32 = Svr_storage.Crc32
module Varint = Svr_storage.Varint

let version = 1
let magic = '\x93'
let max_frame = 4 * 1024 * 1024

type request =
  | Hello of { version : int }
  | Query of {
      id : int;
      mode : Svr_core.Types.mode;
      cls : Svr_serve.Admission.cls;
      k : int;
      deadline_ms : float option;
      sim_ms : float option;
      pages : int option;
      blocks : int option;
      terms : string list;
    }
  | Goodbye

type outcome =
  | Complete of (int * float) list
  | Partial of {
      results : (int * float) list;
      bound : float;
      reason : Svr_core.Budget.reason;
    }
  | Timed_out of Svr_core.Budget.reason
  | Rejected of { reason : string; retry_after_ms : float }
  | Server_error of string

type response =
  | Hello_ack of { version : int }
  | Reply of { id : int; outcome : outcome }
  | Drain of { retry_after_ms : float }

(* -- primitive codecs ------------------------------------------------------ *)

let corrupt fmt = E.error E.Corrupt fmt

let put_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

let get_f64 s pos =
  if !pos + 8 > String.length s then corrupt "wire: truncated float";
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code s.[!pos]));
    incr pos
  done;
  Int64.float_of_bits !bits

let put_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let get_string s pos =
  let n = Varint.read s pos in
  (* n < 0 is unreachable while Varint.read rejects bit-62 encodings, but a
     negative length would slip past the subtraction check below and escape
     as String.sub's untyped Invalid_argument — guard it here too *)
  if n < 0 || n > String.length s - !pos then corrupt "wire: truncated string";
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let put_byte buf b = Buffer.add_char buf (Char.chr (b land 0xFF))

let get_byte s pos =
  if !pos >= String.length s then corrupt "wire: truncated byte";
  let b = Char.code s.[!pos] in
  incr pos;
  b

(* optional fields as a presence bitmask so absent budgets cost zero bytes *)
let put_opt_f64 buf = function None -> () | Some v -> put_f64 buf v
let put_opt_int buf = function None -> () | Some v -> Varint.write buf v

let mode_byte : Svr_core.Types.mode -> int = function
  | Conjunctive -> 0
  | Disjunctive -> 1

let mode_of_byte = function
  | 0 -> Svr_core.Types.Conjunctive
  | 1 -> Svr_core.Types.Disjunctive
  | b -> corrupt "wire: unknown mode byte %d" b

let cls_byte : Svr_serve.Admission.cls -> int = function
  | Query -> 0
  | Update -> 1
  | Maintenance -> 2

let cls_of_byte = function
  | 0 -> Svr_serve.Admission.Query
  | 1 -> Svr_serve.Admission.Update
  | 2 -> Svr_serve.Admission.Maintenance
  | b -> corrupt "wire: unknown class byte %d" b

let reason_byte : Svr_core.Budget.reason -> int = function
  | Deadline -> 0
  | Sim_deadline -> 1
  | Pages -> 2
  | Blocks -> 3
  | Cancelled -> 4

let reason_of_byte = function
  | 0 -> Svr_core.Budget.Deadline
  | 1 -> Svr_core.Budget.Sim_deadline
  | 2 -> Svr_core.Budget.Pages
  | 3 -> Svr_core.Budget.Blocks
  | 4 -> Svr_core.Budget.Cancelled
  | b -> corrupt "wire: unknown budget-reason byte %d" b

let put_results buf rs =
  Varint.write buf (List.length rs);
  List.iter
    (fun (doc, score) ->
      Varint.write buf doc;
      put_f64 buf score)
    rs

let get_results s pos =
  let n = Varint.read s pos in
  (* 9 = minimum bytes per (doc, score) pair; bounds the count before the
     allocation below can be sized by a corrupt length *)
  if n < 0 || n > (String.length s - !pos) / 9 then
    corrupt "wire: result count %d exceeds payload" n;
  List.init n (fun _ ->
      let doc = Varint.read s pos in
      let score = get_f64 s pos in
      (doc, score))

(* -- message payloads ------------------------------------------------------ *)

let tag_hello = 0x01
let tag_query = 0x02
let tag_goodbye = 0x03
let tag_hello_ack = 0x81
let tag_reply = 0x82
let tag_drain = 0x83

let request_payload r =
  let buf = Buffer.create 64 in
  (match r with
  | Hello { version } ->
      put_byte buf tag_hello;
      Varint.write buf version
  | Goodbye -> put_byte buf tag_goodbye
  | Query { id; mode; cls; k; deadline_ms; sim_ms; pages; blocks; terms } ->
      put_byte buf tag_query;
      Varint.write buf id;
      let flags =
        (if deadline_ms <> None then 1 else 0)
        lor (if sim_ms <> None then 2 else 0)
        lor (if pages <> None then 4 else 0)
        lor if blocks <> None then 8 else 0
      in
      put_byte buf flags;
      put_byte buf (mode_byte mode);
      put_byte buf (cls_byte cls);
      Varint.write buf k;
      put_opt_f64 buf deadline_ms;
      put_opt_f64 buf sim_ms;
      put_opt_int buf pages;
      put_opt_int buf blocks;
      Varint.write buf (List.length terms);
      List.iter (put_string buf) terms);
  Buffer.contents buf

let request_of_payload s =
  let pos = ref 0 in
  let r =
    match get_byte s pos with
    | t when t = tag_hello -> Hello { version = Varint.read s pos }
    | t when t = tag_goodbye -> Goodbye
    | t when t = tag_query ->
        let id = Varint.read s pos in
        let flags = get_byte s pos in
        if flags land lnot 0xF <> 0 then
          corrupt "wire: unknown query flags 0x%x" flags;
        let mode = mode_of_byte (get_byte s pos) in
        let cls = cls_of_byte (get_byte s pos) in
        let k = Varint.read s pos in
        let deadline_ms =
          if flags land 1 <> 0 then Some (get_f64 s pos) else None
        in
        let sim_ms = if flags land 2 <> 0 then Some (get_f64 s pos) else None in
        let pages =
          if flags land 4 <> 0 then Some (Varint.read s pos) else None
        in
        let blocks =
          if flags land 8 <> 0 then Some (Varint.read s pos) else None
        in
        let n = Varint.read s pos in
        if n < 0 || n > String.length s - !pos then
          corrupt "wire: term count %d exceeds payload" n;
        let terms = List.init n (fun _ -> get_string s pos) in
        Query { id; mode; cls; k; deadline_ms; sim_ms; pages; blocks; terms }
    | t -> corrupt "wire: unknown request tag 0x%x" t
  in
  if !pos <> String.length s then
    corrupt "wire: %d trailing bytes after request" (String.length s - !pos);
  r

let outcome_payload buf = function
  | Complete rs ->
      put_byte buf 0;
      put_results buf rs
  | Partial { results; bound; reason } ->
      put_byte buf 1;
      put_results buf results;
      put_f64 buf bound;
      put_byte buf (reason_byte reason)
  | Timed_out reason ->
      put_byte buf 2;
      put_byte buf (reason_byte reason)
  | Rejected { reason; retry_after_ms } ->
      put_byte buf 3;
      put_string buf reason;
      put_f64 buf retry_after_ms
  | Server_error msg ->
      put_byte buf 4;
      put_string buf msg

let outcome_of_payload s pos =
  match get_byte s pos with
  | 0 -> Complete (get_results s pos)
  | 1 ->
      let results = get_results s pos in
      let bound = get_f64 s pos in
      let reason = reason_of_byte (get_byte s pos) in
      Partial { results; bound; reason }
  | 2 -> Timed_out (reason_of_byte (get_byte s pos))
  | 3 ->
      let reason = get_string s pos in
      let retry_after_ms = get_f64 s pos in
      Rejected { reason; retry_after_ms }
  | 4 -> Server_error (get_string s pos)
  | t -> corrupt "wire: unknown outcome tag %d" t

let response_payload r =
  let buf = Buffer.create 64 in
  (match r with
  | Hello_ack { version } ->
      put_byte buf tag_hello_ack;
      Varint.write buf version
  | Reply { id; outcome } ->
      put_byte buf tag_reply;
      Varint.write buf id;
      outcome_payload buf outcome
  | Drain { retry_after_ms } ->
      put_byte buf tag_drain;
      put_f64 buf retry_after_ms);
  Buffer.contents buf

let response_of_payload s =
  let pos = ref 0 in
  let r =
    match get_byte s pos with
    | t when t = tag_hello_ack -> Hello_ack { version = Varint.read s pos }
    | t when t = tag_drain -> Drain { retry_after_ms = get_f64 s pos }
    | t when t = tag_reply ->
        let id = Varint.read s pos in
        let outcome = outcome_of_payload s pos in
        Reply { id; outcome }
    | t -> corrupt "wire: unknown response tag 0x%x" t
  in
  if !pos <> String.length s then
    corrupt "wire: %d trailing bytes after response" (String.length s - !pos);
  r

(* -- framing --------------------------------------------------------------- *)

let encode_frame payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Wire.encode_frame: %d > max_frame" n);
  let buf = Buffer.create (n + 10) in
  Buffer.add_char buf magic;
  Varint.write buf n;
  let crc = Crc32.string payload in
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Buffer.add_string buf payload;
  Buffer.contents buf

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int; (* first unconsumed byte *)
  mutable len : int; (* unconsumed bytes from [start] *)
}

let decoder () = { buf = Bytes.create 4096; start = 0; len = 0 }
let buffered d = d.len

let feed d ?(off = 0) ?len bytes =
  let n = match len with Some n -> n | None -> Bytes.length bytes - off in
  if off < 0 || n < 0 || off + n > Bytes.length bytes then
    invalid_arg "Wire.feed: bad slice";
  let cap = Bytes.length d.buf in
  if d.start + d.len + n > cap then begin
    (* compact, growing only if the live bytes + arrival still don't fit *)
    let need = d.len + n in
    let cap' = if need <= cap then cap else max (2 * cap) need in
    let buf' = if cap' = cap then d.buf else Bytes.create cap' in
    Bytes.blit d.buf d.start buf' 0 d.len;
    d.buf <- buf';
    d.start <- 0
  end;
  Bytes.blit bytes off d.buf (d.start + d.len) n;
  d.len <- d.len + n

(* parse a frame-length varint at relative offset [off]; [`More] when the
   buffer ends mid-varint, [`Len (value, width)] on success. Range-checked
   against [max_frame] during the parse so a hostile length never sizes an
   allocation. *)
let parse_len d ~off =
  let rec go i acc =
    if i >= 5 then corrupt "wire: frame length varint too long"
    else if off + i >= d.len then `More
    else
      let b = Char.code (Bytes.get d.buf (d.start + off + i)) in
      let acc = acc lor ((b land 0x7F) lsl (7 * i)) in
      if acc > max_frame then
        corrupt "wire: frame length %d exceeds max_frame %d" acc max_frame
      else if b < 0x80 then
        if b = 0 && i > 0 then corrupt "wire: overlong frame length"
        else `Len (acc, i + 1)
      else go (i + 1) acc
  in
  go 0 0

let next d =
  if d.len = 0 then None
  else begin
    let m = Bytes.get d.buf d.start in
    if m <> magic then
      corrupt "wire: bad magic byte 0x%02x (want 0x%02x)" (Char.code m)
        (Char.code magic);
    match parse_len d ~off:1 with
    | `More -> None
    | `Len (plen, width) ->
        let total = 1 + width + 4 + plen in
        if d.len < total then None
        else begin
          let crc_off = d.start + 1 + width in
          let crc = ref 0 in
          for i = 0 to 3 do
            crc := (!crc lsl 8) lor Char.code (Bytes.get d.buf (crc_off + i))
          done;
          let payload = Bytes.sub_string d.buf (crc_off + 4) plen in
          if Crc32.string payload <> !crc then
            corrupt "wire: frame CRC mismatch (%d payload bytes)" plen;
          d.start <- d.start + total;
          d.len <- d.len - total;
          if d.len = 0 then d.start <- 0;
          Some payload
        end
  end

let encode_request r = encode_frame (request_payload r)
let encode_response r = encode_frame (response_payload r)
