(** OCaml client for the {!Wire} protocol: a low-level single connection
    (pipelining, explicit ids — what the protocol tests drive) and a bounded
    connection pool with retry policy on top (what applications use).

    Errors are classified recoverable vs fatal: [Rejected] (admission shed,
    carries the server's retry hint), [Draining] (server going away) and
    [Closed] (connection-level I/O failure) are worth retrying — the pool
    does so with the decorrelated-jitter curve from
    {!Svr_storage.Retry.jitter_ms}, seeding it with the server's
    [retry_after_ms] so clients pace themselves down exactly as hard as the
    server asked. [Timeout] (the per-query allowance elapsed — retrying
    would double-spend the caller's deadline), [Remote] (the query raised
    server-side) and [Protocol] (corrupt frame, version mismatch) are
    terminal. *)

type error =
  | Rejected of { reason : string; retry_after_ms : float }
  | Draining of { retry_after_ms : float }
  | Closed of string
  | Timeout
  | Remote of string
  | Protocol of string

val recoverable : error -> bool
val error_to_string : error -> string

(** A single protocol connection. Not thread-safe; one owner at a time
    (the pool enforces this). *)
module Conn : sig
  type t

  val connect : host:string -> port:int -> unit -> t
  (** TCP connect + [Hello]/[Hello_ack] handshake.
      @raise Failure on connection or handshake failure. *)

  val send :
    t ->
    id:int ->
    ?mode:Svr_core.Types.mode ->
    ?cls:Svr_serve.Admission.cls ->
    ?deadline_ms:float ->
    ?sim_ms:float ->
    ?pages:int ->
    ?blocks:int ->
    string list ->
    k:int ->
    (unit, error) result
  (** Write one [Query] frame without waiting — pipelining. *)

  val recv : t -> ?timeout_ms:float -> unit -> (int * Wire.outcome, error) result
  (** The next [Reply], as (echoed id, outcome) — including [Rejected] and
      [Server_error] outcomes, undigested. [timeout_ms] bounds the whole
      receive (an absolute deadline spanning every read), not each read
      syscall. A [Drain] frame is [Error (Draining _)]; after [Timeout] or
      any error the connection is marked dead (a late reply would
      desynchronize ids). *)

  val query :
    t ->
    ?timeout_ms:float ->
    ?mode:Svr_core.Types.mode ->
    ?cls:Svr_serve.Admission.cls ->
    ?deadline_ms:float ->
    ?sim_ms:float ->
    ?pages:int ->
    ?blocks:int ->
    string list ->
    k:int ->
    (Wire.outcome, error) result
  (** [send] then [recv], auto-assigned id; [Rejected]/[Server_error]
      outcomes land on the [Error] side ([Rejected _]/[Remote _]), so [Ok]
      is always [Complete]/[Partial]/[Timed_out]. *)

  val alive : t -> bool
  val goodbye : t -> unit
  (** Best-effort [Goodbye] frame, then {!close}. *)

  val close : t -> unit
end

type t
(** A bounded pool of connections with a retry policy. Thread-safe:
    concurrent {!query} calls lease distinct connections, blocking when all
    [size] are leased. *)

val create :
  ?size:int ->
  ?query_timeout_ms:float ->
  ?retries:int ->
  ?retry_base_ms:float ->
  ?retry_cap_ms:float ->
  host:string ->
  port:int ->
  unit ->
  t
(** [size] (default 4) bounds live connections; connections are opened
    lazily and re-opened after failures. [query_timeout_ms] (default none)
    bounds each attempt's wait for a reply. A recoverable error is retried
    up to [retries] (default 3) more times, sleeping
    [Retry.jitter_ms ~base_ms:retry_base_ms ~cap_ms:retry_cap_ms] seeded
    with the server's [retry_after_ms] hint when one was given. *)

val query :
  t ->
  ?mode:Svr_core.Types.mode ->
  ?cls:Svr_serve.Admission.cls ->
  ?deadline_ms:float ->
  ?sim_ms:float ->
  ?pages:int ->
  ?blocks:int ->
  string list ->
  k:int ->
  (Wire.outcome, error) result
(** One query through the pool, applying the retry policy. [Ok] outcomes
    are [Complete]/[Partial]/[Timed_out] only. *)

val sheds : t -> int
(** [Rejected] replies observed (before retry) — the client-side view of
    server shedding. *)

val reconnects : t -> int
(** Connections discarded and re-opened after [Draining]/[Closed]/
    [Timeout]/[Protocol]. *)

val close : t -> unit
(** Close idle connections now, leased ones as they are released;
    subsequent {!query} calls fail with [Closed]. *)
