(** The SVR wire protocol: length-prefixed, CRC32-framed messages over a
    byte stream.

    A frame mirrors the WAL's self-delimiting [[len|crc|payload]] records
    ({!Svr_storage.Wal}), adapted to a stream that has no epoch: one magic
    byte (so a connection speaking HTTP — ["GET /metrics"] — is
    distinguishable from the binary protocol at the first byte), a
    {!Svr_storage.Varint} payload length, a big-endian CRC32 of the
    payload, then the payload. The CRC makes a torn or bit-flipped frame a
    typed {!Svr_storage.Storage_error.Error}[ (Corrupt, _)] at the decoder,
    never a misparse: the server kills the offending connection and nothing
    else.

    Payloads are tagged messages. Integers are varints, floats are
    big-endian IEEE-754 bit patterns, strings are length-prefixed. Every
    decoder is total over arbitrary bytes: it returns a value the encoder
    could have produced or raises [Corrupt]. *)

val version : int
(** Protocol version carried in [Hello]/[Hello_ack]. *)

val magic : char
(** First byte of every binary frame (never an ASCII HTTP method byte). *)

val max_frame : int
(** Maximum payload bytes per frame (4 MiB). Frames claiming more are
    rejected as [Corrupt] before any allocation of the claimed size. *)

(** {2 Messages} *)

type request =
  | Hello of { version : int }
      (** Session open: first frame on every connection. The server answers
          [Hello_ack] or closes on a version mismatch. *)
  | Query of {
      id : int;  (** echoed in the [Reply]; pipelined requests correlate *)
      mode : Svr_core.Types.mode;
      cls : Svr_serve.Admission.cls;
      k : int;
      deadline_ms : float option;
      sim_ms : float option;
      pages : int option;
      blocks : int option;
      terms : string list;  (** pre-analyzed terms, verbatim *)
    }
  | Goodbye  (** clean session close *)

type outcome =
  | Complete of (int * float) list
  | Partial of {
      results : (int * float) list;
      bound : float;
      reason : Svr_core.Budget.reason;
    }
  | Timed_out of Svr_core.Budget.reason
  | Rejected of { reason : string; retry_after_ms : float }
      (** shed by admission — the protocol-level retry hint *)
  | Server_error of string
      (** the query raised; the connection stays usable *)

type response =
  | Hello_ack of { version : int }
  | Reply of { id : int; outcome : outcome }
  | Drain of { retry_after_ms : float }
      (** the server is draining: the request was not admitted, and the
          connection will close once in-flight replies are flushed *)

(** {2 Payload codecs} *)

val request_payload : request -> string
val response_payload : response -> string

val request_of_payload : string -> request
(** @raise Svr_storage.Storage_error.Error [(Corrupt, _)] on anything
    {!request_payload} could not have produced. *)

val response_of_payload : string -> response

(** {2 Framing} *)

val encode_frame : string -> string
(** [magic | varint len | u32-be crc32(payload) | payload]. *)

type decoder
(** An incremental frame decoder over arbitrary chunk arrivals — bytes may
    be fed one at a time (torn frames) or many frames at once (pipelining);
    {!next} yields each complete, CRC-verified payload in order. *)

val decoder : unit -> decoder

val feed : decoder -> ?off:int -> ?len:int -> Bytes.t -> unit
(** Append received bytes. *)

val next : decoder -> string option
(** The next complete payload, or [None] when more bytes are needed.
    @raise Svr_storage.Storage_error.Error [(Corrupt, _)] on a bad magic
    byte, an oversized or malformed length, or a CRC mismatch. The decoder
    is unusable after a raise — the connection is dead. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed (bounded by one frame plus a read). *)

(** {2 Convenience} *)

val encode_request : request -> string
(** [encode_frame (request_payload r)]. *)

val encode_response : response -> string
