(** The TCP front door: a listener thread accepting connections, a
    reader/writer thread pair per connection, all queries funneled into one
    {!Svr_serve.Server} intake queue — so admission shedding, health tiers,
    queue-wait-inclusive deadlines and degraded [Partial] outcomes flow to
    the wire unchanged as typed {!Wire.outcome}s.

    Connections speak the {!Wire} protocol. The same port also answers
    plaintext HTTP [GET /metrics] (Prometheus exposition), [GET
    /metrics.json] and [GET /health] — the first byte of a connection
    routes: {!Wire.magic} means a binary session, an ASCII letter means one
    HTTP exchange then close.

    {b Sessions.} A binary session opens with [Hello]/[Hello_ack], then
    pipelines [Query] frames: each is admitted (or shed) immediately on
    receipt, so a [Rejected] reply — the protocol-level retry hint — never
    waits behind executing queries' replies of earlier requests on the same
    connection beyond FIFO write order. Replies come back in request order
    per connection; the echoed [id] correlates regardless.

    {b Failure isolation.} A frame that fails CRC, a bad magic byte, an
    unknown tag, a [Query] before [Hello]: the offending connection is
    closed (counted in [svr_net_conn_errors_total{kind}]); the server and
    every other connection are untouched. A query that raises is answered
    with [Server_error] and the connection stays usable.

    {b Drain.} {!shutdown} stops the listener, lets the serve layer answer
    every admitted request, then finishes each connection: pending replies
    are flushed, a [Drain] farewell frame carries the retry-after hint, and
    the socket is shut down. New connections during the drain get a [Drain]
    frame and an immediate close. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?backlog:int ->
  ?max_conns:int ->
  ?handshake_timeout_s:float ->
  ?idle_timeout_s:float ->
  ?domains:int ->
  ?queue_bound:int ->
  ?policy:Svr_core.Config.shed_policy ->
  ?batch_max:int ->
  ?health:(unit -> Svr_obs.Health.state) ->
  ?tick:(unit -> unit) ->
  Svr_core.Index.t ->
  t
(** Bind, listen and serve [index]. [host] defaults to ["127.0.0.1"],
    [port] to [0] (ephemeral — read it back with {!port}), [backlog] to 64,
    [max_conns] to 256 (excess accepts are told to back off with a [Drain]
    frame and closed). [handshake_timeout_s] (default 5, [0.] disables)
    bounds the wait for a new connection's first bytes, so a
    connect-and-stall client cannot pin a [max_conns] slot; sessions that
    complete the [Hello] handshake then wait [idle_timeout_s] between
    frames (default: no idle limit). The remaining options configure the
    inner {!Svr_serve.Server.create}. *)

val port : t -> int
(** The bound TCP port (the ephemeral one when [port:0]). *)

val serve : t -> Svr_serve.Server.t
(** The serving core behind the listener (admission stats, direct
    in-process submission). *)

val conns : t -> int
(** Live connections (binary sessions + HTTP exchanges in flight). *)

val draining : t -> bool

val shutdown : t -> unit
(** Graceful drain as described above; blocks until the listener, every
    connection thread and the serving core have exited. Idempotent. *)

val with_server :
  ?host:string ->
  ?port:int ->
  ?backlog:int ->
  ?max_conns:int ->
  ?handshake_timeout_s:float ->
  ?idle_timeout_s:float ->
  ?domains:int ->
  ?queue_bound:int ->
  ?policy:Svr_core.Config.shed_policy ->
  ?batch_max:int ->
  ?health:(unit -> Svr_obs.Health.state) ->
  ?tick:(unit -> unit) ->
  Svr_core.Index.t ->
  (t -> 'a) ->
  'a
(** [create], run, then {!shutdown} (also on exception). *)
