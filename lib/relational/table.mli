(** B+-tree-backed tables with row-change notifications.

    Change subscribers are how the incremental materialized view (and through
    it the text index) learns about base-table updates — the paper's "the
    index structures are notified whenever the score of a document is updated
    in the materialized view" chain starts here. *)

type change =
  | Inserted of Value.t array
  | Deleted of Value.t array
  | Updated of { before : Value.t array; after : Value.t array }

type t

val create : Svr_storage.Env.t -> name:string -> Schema.t -> t

val name : t -> string

val schema : t -> Schema.t

val insert : t -> Value.t array -> unit
(** @raise Invalid_argument on schema mismatch or duplicate primary key. *)

val get : t -> Value.t -> Value.t array option
(** Lookup by primary key. *)

val update : t -> Value.t array -> unit
(** Replace the row having the new row's primary key.
    @raise Invalid_argument if absent or if the schema rejects the row. *)

val delete : t -> Value.t -> bool
(** Delete by primary key; [true] if a row was removed. *)

val scan : t -> (Value.t array -> unit) -> unit
(** All rows in primary-key-encoding order. *)

val count : t -> int

val subscribe : t -> (change -> unit) -> unit
(** Callbacks fire after the change is applied, in subscription order. *)

val wal_tag : t -> string
(** The tag (["table:" ^ name]) this table stamps on its WAL records. *)

val apply_op : t -> Svr_storage.Wal.op -> unit
(** Replay one logged row operation without re-logging and {e without}
    firing subscribers (the downstream index effects carry their own
    records). @raise Invalid_argument on a text-index record. *)
