open Sql_ast
module L = Sql_lexer

exception Parse_error of string

type state = { mutable tokens : L.token list }

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let peek st = match st.tokens with [] -> L.Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got = next st in
  if got <> tok then
    fail "expected %s but found %s" (L.pp_token tok) (L.pp_token got)

let is_kw st kw =
  match peek st with L.Ident s -> keyword_eq s kw | _ -> false

let eat_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    fail "expected keyword %s but found %s" kw (L.pp_token (peek st))

let ident st =
  match next st with
  | L.Ident s -> s
  | t -> fail "expected an identifier, found %s" (L.pp_token t)

let value_ty st =
  let name = ident st in
  match Value.ty_of_string name with
  | Some ty -> ty
  | None -> fail "unknown type %s" name

(* reserved words that terminate an expression context *)
let reserved =
  [ "from"; "where"; "order"; "by"; "fetch"; "top"; "results"; "only"; "asc";
    "desc"; "and"; "or"; "not"; "as"; "set"; "values"; "select"; "group";
    "return"; "returns"; "deadline" ]

let is_reserved s = List.exists (keyword_eq s) reserved

let agg_of_name s =
  match String.lowercase_ascii s with
  | "avg" -> Some Avg
  | "sum" -> Some Sum
  | "min" -> Some Min
  | "max" -> Some Max
  | "count" -> Some Count
  | _ -> None

(* -- expressions ---------------------------------------------------------- *)

let rec parse_or st =
  let lhs = parse_and st in
  if eat_kw st "or" then Binop (Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if eat_kw st "and" then Binop (And, lhs, parse_and st) else lhs

and parse_not st =
  if eat_kw st "not" then Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | L.Eq -> Some Eq
    | L.Neq -> Some Neq
    | L.Lt -> Some Lt
    | L.Le -> Some Le
    | L.Gt -> Some Gt
    | L.Ge -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Binop (op, lhs, parse_add st)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let rec go () =
    match peek st with
    | L.Plus ->
        advance st;
        lhs := Binop (Add, !lhs, parse_mul st);
        go ()
    | L.Minus ->
        advance st;
        lhs := Binop (Sub, !lhs, parse_mul st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek st with
    | L.Star ->
        advance st;
        lhs := Binop (Mul, !lhs, parse_unary st);
        go ()
    | L.Slash ->
        advance st;
        lhs := Binop (Div, !lhs, parse_unary st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match peek st with
  | L.Minus -> (
      advance st;
      (* fold unary minus into numeric literals so -3 is a literal, keeping
         print/parse roundtrips stable *)
      match parse_unary st with
      | Lit (Value.Int i) -> Lit (Value.Int (-i))
      | Lit (Value.Float f) -> Lit (Value.Float (-.f))
      | e -> Neg e)
  | _ -> parse_primary st

and parse_primary st =
  match next st with
  | L.Int_lit i -> Lit (Value.Int i)
  | L.Float_lit f -> Lit (Value.Float f)
  | L.String_lit s -> Lit (Value.Text s)
  | L.Lparen ->
      let e =
        if is_kw st "select" then Subquery (parse_select st)
        else parse_or st
      in
      expect st L.Rparen;
      e
  | L.Ident s when keyword_eq s "null" -> Lit Value.Null
  | L.Ident s when keyword_eq s "select" ->
      (* naked scalar select, as in the paper's CREATE FUNCTION bodies *)
      Subquery (parse_select_after_kw st)
  | L.Ident s when is_reserved s -> fail "unexpected keyword %s" s
  | L.Ident s -> (
      match peek st with
      | L.Lparen -> (
          advance st;
          match agg_of_name s with
          | Some Count when peek st = L.Star ->
              advance st;
              expect st L.Rparen;
              Count_star
          | Some agg ->
              let arg = parse_or st in
              expect st L.Rparen;
              Agg (agg, arg)
          | None ->
              let args = parse_args st in
              Call (String.lowercase_ascii s, args))
      | L.Dot ->
          advance st;
          Col (Some s, ident st)
      | _ -> Col (None, s))
  | t -> fail "unexpected token %s in expression" (L.pp_token t)

and parse_args st =
  if peek st = L.Rparen then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let arg = parse_or st in
      match next st with
      | L.Comma -> go (arg :: acc)
      | L.Rparen -> List.rev (arg :: acc)
      | t -> fail "expected , or ) in argument list, found %s" (L.pp_token t)
    in
    go []
  end

(* -- SELECT --------------------------------------------------------------- *)

and parse_select st =
  expect_kw st "select";
  parse_select_after_kw st

and parse_select_after_kw st =
  let projections =
    let rec go acc =
      let proj =
        if peek st = L.Star then begin
          advance st;
          Star
        end
        else begin
          let e = parse_or st in
          let alias = if eat_kw st "as" then Some (ident st) else None in
          Proj (e, alias)
        end
      in
      if peek st = L.Comma then begin
        advance st;
        go (proj :: acc)
      end
      else List.rev (proj :: acc)
    in
    go []
  in
  let from =
    if eat_kw st "from" then begin
      let tbl = ident st in
      let alias =
        match peek st with
        | L.Ident s when not (is_reserved s) ->
            advance st;
            Some s
        | _ -> None
      in
      Some (tbl, alias)
    end
    else None
  in
  let where = if eat_kw st "where" then Some (parse_or st) else None in
  let order =
    if eat_kw st "order" then begin
      expect_kw st "by";
      let e = parse_or st in
      let descending =
        if eat_kw st "desc" then true
        else begin
          ignore (eat_kw st "asc");
          false
        end
      in
      Some { ob_expr = e; descending }
    end
    else None
  in
  let fetch_top =
    if eat_kw st "fetch" then begin
      expect_kw st "top";
      let n =
        match next st with
        | L.Int_lit n -> n
        | t -> fail "expected a row count after FETCH TOP, found %s" (L.pp_token t)
      in
      expect_kw st "results";
      expect_kw st "only";
      Some n
    end
    else None
  in
  let deadline =
    if eat_kw st "deadline" then (
      match next st with
      | L.Int_lit n when n > 0 -> Some n
      | t ->
          fail "expected a positive millisecond count after DEADLINE, found %s"
            (L.pp_token t))
    else None
  in
  { projections; from; where; order; fetch_top; deadline }

(* -- statements ----------------------------------------------------------- *)

let parse_param_list st =
  expect st L.Lparen;
  if peek st = L.Rparen then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let name = ident st in
      if peek st = L.Colon then advance st;
      let ty = value_ty st in
      match next st with
      | L.Comma -> go ((name, ty) :: acc)
      | L.Rparen -> List.rev ((name, ty) :: acc)
      | t -> fail "expected , or ) in parameter list, found %s" (L.pp_token t)
    in
    go []
  end

let parse_create st =
  expect_kw st "create";
  if eat_kw st "table" then begin
    let tbl = ident st in
    expect st L.Lparen;
    let cols = ref [] and pk = ref None in
    let rec go () =
      if eat_kw st "primary" then begin
        expect_kw st "key";
        expect st L.Lparen;
        pk := Some (ident st);
        expect st L.Rparen
      end
      else begin
        let col_name = ident st in
        if peek st = L.Colon then advance st;
        let col_ty = value_ty st in
        cols := { col_name; col_ty } :: !cols;
        if eat_kw st "primary" then begin
          expect_kw st "key";
          pk := Some col_name
        end
      end;
      match next st with
      | L.Comma -> go ()
      | L.Rparen -> ()
      | t -> fail "expected , or ) in column list, found %s" (L.pp_token t)
    in
    go ();
    let cols = List.rev !cols in
    match !pk with
    | None -> fail "CREATE TABLE %s: missing PRIMARY KEY" tbl
    | Some pk -> Create_table { tbl; cols; pk }
  end
  else if eat_kw st "function" then begin
    let fname = ident st in
    let params = parse_param_list st in
    expect_kw st "returns";
    let ret = value_ty st in
    expect_kw st "return";
    let body = parse_or st in
    Create_function { fname = String.lowercase_ascii fname; params; ret; body }
  end
  else if eat_kw st "text" then begin
    expect_kw st "index";
    let idx_name = ident st in
    expect_kw st "on";
    let tbl = ident st in
    expect st L.Lparen;
    let text_col = ident st in
    expect st L.Rparen;
    let method_name = if eat_kw st "using" then ident st else "chunk" in
    expect_kw st "score";
    expect st L.Lparen;
    let rec fns acc =
      let f = String.lowercase_ascii (ident st) in
      match next st with
      | L.Comma -> fns (f :: acc)
      | L.Rparen -> List.rev (f :: acc)
      | t -> fail "expected , or ) in SCORE list, found %s" (L.pp_token t)
    in
    let score_funcs = fns [] in
    let agg_func =
      if eat_kw st "agg" then Some (String.lowercase_ascii (ident st)) else None
    in
    let ts_weight =
      if eat_kw st "weight" then
        Some
          (match next st with
          | L.Int_lit n -> float_of_int n
          | L.Float_lit f -> f
          | t -> fail "expected a number after WEIGHT, found %s" (L.pp_token t))
      else None
    in
    let codec =
      if eat_kw st "codec" then Some (String.lowercase_ascii (ident st))
      else None
    in
    Create_text_index
      { idx_name; tbl; text_col; method_name; score_funcs; agg_func; ts_weight;
        codec }
  end
  else fail "expected TABLE, FUNCTION or TEXT INDEX after CREATE"

let parse_statement st =
  if is_kw st "create" then parse_create st
  else if eat_kw st "insert" then begin
    expect_kw st "into";
    let tbl = ident st in
    expect_kw st "values";
    let rec rows acc =
      expect st L.Lparen;
      let row = parse_args st in
      if peek st = L.Comma then begin
        advance st;
        rows (row :: acc)
      end
      else List.rev (row :: acc)
    in
    Insert { tbl; rows = rows [] }
  end
  else if eat_kw st "update" then begin
    let tbl = ident st in
    expect_kw st "set";
    let rec assignments acc =
      let col = ident st in
      expect st L.Eq;
      let e = parse_or st in
      if peek st = L.Comma then begin
        advance st;
        assignments ((col, e) :: acc)
      end
      else List.rev ((col, e) :: acc)
    in
    let assignments = assignments [] in
    let where = if eat_kw st "where" then Some (parse_or st) else None in
    Update { tbl; assignments; where }
  end
  else if eat_kw st "delete" then begin
    expect_kw st "from";
    let tbl = ident st in
    let where = if eat_kw st "where" then Some (parse_or st) else None in
    Delete { tbl; where }
  end
  else if eat_kw st "rebuild" then begin
    expect_kw st "text";
    expect_kw st "index";
    Rebuild_index (ident st)
  end
  else if eat_kw st "maintain" then begin
    expect_kw st "text";
    expect_kw st "index";
    let name = ident st in
    let steps =
      if eat_kw st "step" then (
        match peek st with
        | L.Int_lit n when n > 0 ->
            advance st;
            Some n
        | t -> fail "expected a positive step count after STEP, found %s" (L.pp_token t))
      else None
    in
    Maintain_index { name; steps }
  end
  else if is_kw st "select" then Select (parse_select st)
  else fail "unexpected start of statement: %s" (L.pp_token (peek st))

let parse src =
  let st = { tokens = L.tokenize src } in
  let rec go acc =
    match peek st with
    | L.Eof -> List.rev acc
    | L.Semi ->
        advance st;
        go acc
    | _ ->
        let stmt = parse_statement st in
        (match peek st with
        | L.Semi | L.Eof -> ()
        | t -> fail "expected ; after statement, found %s" (L.pp_token t));
        go (stmt :: acc)
  in
  go []

let parse_one src =
  match parse src with
  | [ stmt ] -> stmt
  | [] -> fail "empty input"
  | _ -> fail "expected exactly one statement"

let parse_expr src =
  let st = { tokens = L.tokenize src } in
  let e = parse_or st in
  (match peek st with
  | L.Eof -> ()
  | t -> fail "trailing tokens after expression: %s" (L.pp_token t));
  e
