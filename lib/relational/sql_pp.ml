open Sql_ast

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

let agg_name = function
  | Avg -> "avg" | Sum -> "sum" | Min -> "min" | Max -> "max" | Count -> "count"

let escape_string s =
  String.concat "''" (String.split_on_char '\'' s)

let pp_value ppf = function
  | Value.Null -> Format.fprintf ppf "NULL"
  | Value.Int i -> Format.fprintf ppf "%d" i
  | Value.Float f ->
      (* keep a decimal point so the literal re-lexes as a float *)
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' then
        Format.fprintf ppf "%s" s
      else Format.fprintf ppf "%s.0" s
  | Value.Text s -> Format.fprintf ppf "'%s'" (escape_string s)

(* fully parenthesized output: simple and unambiguous under re-parsing *)
let rec expr ppf = function
  | Lit v -> pp_value ppf v
  | Col (None, name) -> Format.fprintf ppf "%s" name
  | Col (Some q, name) -> Format.fprintf ppf "%s.%s" q name
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" expr a (binop_name op) expr b
  (* the space avoids "--", which would lex as a comment *)
  | Neg e -> Format.fprintf ppf "(- %a)" expr e
  | Not e -> Format.fprintf ppf "(NOT %a)" expr e
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") expr)
        args
  | Agg (a, e) -> Format.fprintf ppf "%s(%a)" (agg_name a) expr e
  | Count_star -> Format.fprintf ppf "count(*)"
  | Subquery sel -> Format.fprintf ppf "(%a)" select sel

and select ppf sel =
  let pp_proj ppf = function
    | Star -> Format.fprintf ppf "*"
    | Proj (e, None) -> expr ppf e
    | Proj (e, Some alias) -> Format.fprintf ppf "%a AS %s" expr e alias
  in
  Format.fprintf ppf "SELECT %a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_proj)
    sel.projections;
  (match sel.from with
  | None -> ()
  | Some (tbl, None) -> Format.fprintf ppf " FROM %s" tbl
  | Some (tbl, Some alias) -> Format.fprintf ppf " FROM %s %s" tbl alias);
  (match sel.where with
  | None -> ()
  | Some w -> Format.fprintf ppf " WHERE %a" expr w);
  (match sel.order with
  | None -> ()
  | Some { ob_expr; descending } ->
      Format.fprintf ppf " ORDER BY %a %s" expr ob_expr
        (if descending then "DESC" else "ASC"));
  (match sel.fetch_top with
  | None -> ()
  | Some n -> Format.fprintf ppf " FETCH TOP %d RESULTS ONLY" n);
  match sel.deadline with
  | None -> ()
  | Some n -> Format.fprintf ppf " DEADLINE %d" n

let statement ppf = function
  | Create_table { tbl; cols; pk } ->
      Format.fprintf ppf "CREATE TABLE %s (%a, PRIMARY KEY (%s))" tbl
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf c ->
             Format.fprintf ppf "%s %s" c.col_name (Value.ty_name c.col_ty)))
        cols pk
  | Create_function { fname; params; ret; body } ->
      Format.fprintf ppf "CREATE FUNCTION %s (%a) RETURNS %s RETURN %a" fname
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (p, ty) -> Format.fprintf ppf "%s %s" p (Value.ty_name ty)))
        params (Value.ty_name ret) expr body
  | Create_text_index
      { idx_name; tbl; text_col; method_name; score_funcs; agg_func; ts_weight;
        codec } ->
      Format.fprintf ppf
        "CREATE TEXT INDEX %s ON %s (%s) USING %s SCORE (%a)%s%s%s"
        idx_name tbl text_col method_name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Format.pp_print_string)
        score_funcs
        (match agg_func with None -> "" | Some a -> " AGG " ^ a)
        (match ts_weight with
        | None -> ""
        | Some w -> Printf.sprintf " WEIGHT %.17g" w)
        (match codec with None -> "" | Some c -> " CODEC " ^ c)
  | Rebuild_index name -> Format.fprintf ppf "REBUILD TEXT INDEX %s" name
  | Maintain_index { name; steps } ->
      Format.fprintf ppf "MAINTAIN TEXT INDEX %s%s" name
        (match steps with None -> "" | Some n -> Printf.sprintf " STEP %d" n)
  | Insert { tbl; rows } ->
      Format.fprintf ppf "INSERT INTO %s VALUES %a" tbl
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf row ->
             Format.fprintf ppf "(%a)"
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                  expr)
               row))
        rows
  | Update { tbl; assignments; where } ->
      Format.fprintf ppf "UPDATE %s SET %a" tbl
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (col, e) -> Format.fprintf ppf "%s = %a" col expr e))
        assignments;
      (match where with
      | None -> ()
      | Some w -> Format.fprintf ppf " WHERE %a" expr w)
  | Delete { tbl; where } -> (
      Format.fprintf ppf "DELETE FROM %s" tbl;
      match where with
      | None -> ()
      | Some w -> Format.fprintf ppf " WHERE %a" expr w)
  | Select sel -> select ppf sel

let expr_to_string e = Format.asprintf "%a" expr e
let statement_to_string s = Format.asprintf "%a" statement s
