(** The mini relational engine with integrated SVR (Figure 2's architecture).

    Executes the SQL subset against B+-tree tables, evaluates SQL-bodied
    scoring functions, maintains each text index's SVR score incrementally
    (the Section 3.2 materialized view: base-table changes are mapped to the
    affected documents through the scoring functions' correlation columns and
    the new scores are pushed into the index), and routes
    [ORDER BY score(col, 'keywords') ... FETCH TOP k] queries to the index.

    Incremental-maintenance coverage: a scoring component of the shape
    [SELECT agg(...) FROM T WHERE T.c = param] registers a trigger on [T]
    keyed by column [c]; any other table-reading shape falls back to a
    recompute-all trigger. Purely arithmetic components need no triggers. *)

type t

type result =
  | Done of string  (** DDL/DML acknowledgement *)
  | Rows of { columns : string list; rows : Value.t array list }
  | Degraded of {
      columns : string list;
      rows : Value.t array list;
      bound : float;
      reason : string;
    }
      (** A deadline tripped mid-query but the access method maintains a
          conservative stop bound: [rows] carry exact scores, and any
          qualifying document not listed scores at most [bound]. *)
  | Timed_out of { reason : string }
      (** A deadline tripped in a method whose scan order admits no partial
          answer (the ID methods and table scans). No rows are returned. *)
  | Rejected of { reason : string; retry_after_ms : float }
      (** Admission control shed the statement before execution; retry after
          the suggested backoff. *)

exception Sql_error of string

val create : ?env:Svr_storage.Env.t -> unit -> t

val env : t -> Svr_storage.Env.t

val exec : t -> string -> result list
(** Execute a [;]-separated script.
    @raise Sql_error (also wraps parse/lex errors). *)

val exec_one : t -> string -> result

val query_rows : t -> string -> string list * Value.t array list
(** [exec_one] that must produce rows. @raise Sql_error otherwise. *)

val table : t -> string -> Table.t option

val table_names : t -> string list
(** Registered tables, sorted. *)

val text_index : t -> string -> Svr_core.Index.t option
(** The underlying index of a CREATE TEXT INDEX, by index name. *)

val text_indexes : t -> (string * Svr_core.Index.t) list
(** Every text index with its name, in creation order — what the shell's
    [.codecs] listing walks. *)

val query_index_batch :
  t ->
  index:string ->
  ?domains:int ->
  ?k:int ->
  string list array ->
  (int * float) list array
(** Serve a batch of keyword queries against a named text index, fanned out
    over [domains] domains (default 1 = serial on the caller;
    a {!Svr_core.Query_pool} is created and torn down around the batch).
    The index is treated as an immutable snapshot: do not [exec] updates on
    this engine while a batch is in flight.
    @raise Sql_error on an unknown index or [domains < 1]. *)

val svr_score : t -> index:string -> doc:int -> float
(** Evaluate the index's scoring spec for one document right now (reads the
    base tables; used by tests to cross-check the incremental path). *)

(** {2 Overload safety}

    Session-level deadline and admission control; see {!Svr_serve}. *)

val set_deadline : t -> float -> unit
(** Default per-statement deadline in wall ms for indexed top-k queries;
    [0.] (the initial value) disables it. A [DEADLINE n] clause on the
    statement overrides the session default.
    @raise Sql_error if negative or not finite. *)

val deadline : t -> float

val set_admission : t -> int option -> unit
(** [set_admission t (Some bound)] gates every subsequent statement through
    an admission controller with the given in-flight bound (queries admitted
    below [bound], DML below [3*bound/4], maintenance below [bound/2]);
    shed statements answer {!Rejected}. [None] removes the gate.
    @raise Sql_error if [bound < 1]. *)

val admission : t -> Svr_serve.Admission.t option

(** {2 Durability}

    Available when the engine was created over a [~durable:true]
    environment; see {!Svr_storage.Env} for the fault model. *)

val checkpoint : t -> unit
(** Force and truncate the WAL, making all applied statements crash-proof.
    No-op on a non-durable environment. *)

val crash : t -> unit
(** Simulate process death (pools and unforced log tail lost).
    @raise Invalid_argument on a non-durable environment. *)

val recover : t -> Svr_storage.Wal.record list
(** Revert storage to the last checkpoint, replay every surviving record —
    row operations through the tables (without re-firing triggers), document
    operations through the text indexes — and checkpoint. Returns the
    replayed records. DDL and index builds are not logged: a crash before
    their first checkpoint loses them. *)

val pp_result : Format.formatter -> result -> unit
