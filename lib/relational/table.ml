module St = Svr_storage

type change =
  | Inserted of Value.t array
  | Deleted of Value.t array
  | Updated of { before : Value.t array; after : Value.t array }

type t = {
  name : string;
  schema : Schema.t;
  env : St.Env.t;
  tree : St.Btree.t;
  mutable subscribers : (change -> unit) list;
}

let create env ~name schema =
  { name; schema; env; tree = St.Env.btree env ~name:("table:" ^ name);
    subscribers = [] }

let name t = t.name
let schema t = t.schema

let wal_tag t = "table:" ^ t.name

let log t op = St.Env.log t.env { St.Wal.tag = wal_tag t; op }

let pk_key v =
  let buf = Buffer.create 16 in
  Value.encode buf v;
  Buffer.contents buf

let encode_row row =
  let buf = Buffer.create 64 in
  Array.iter (Value.encode buf) row;
  Buffer.contents buf

let decode_row t s =
  let pos = ref 0 in
  Array.init (Schema.arity t.schema) (fun _ -> Value.decode s pos)

let notify t change = List.iter (fun f -> f change) (List.rev t.subscribers)

let pk_of t row = row.(Schema.pk_position t.schema)

let get t pk = Option.map (decode_row t) (St.Btree.find t.tree (pk_key pk))

let insert t row =
  Schema.check_row t.schema row;
  let pk = pk_of t row in
  if Value.is_null pk then invalid_arg (t.name ^ ": NULL primary key");
  if St.Btree.mem t.tree (pk_key pk) then
    invalid_arg
      (Format.asprintf "%s: duplicate primary key %a" t.name Value.pp pk);
  log t (St.Wal.Row_put { key = pk_key pk; row = encode_row row });
  St.Btree.insert t.tree (pk_key pk) (encode_row row);
  notify t (Inserted row)

let update t row =
  Schema.check_row t.schema row;
  let pk = pk_of t row in
  match get t pk with
  | None ->
      invalid_arg (Format.asprintf "%s: no row with key %a" t.name Value.pp pk)
  | Some before ->
      log t (St.Wal.Row_put { key = pk_key pk; row = encode_row row });
      St.Btree.insert t.tree (pk_key pk) (encode_row row);
      notify t (Updated { before; after = row })

let delete t pk =
  match get t pk with
  | None -> false
  | Some row ->
      log t (St.Wal.Row_delete { key = pk_key pk });
      ignore (St.Btree.delete t.tree (pk_key pk));
      notify t (Deleted row);
      true

let scan t f =
  St.Btree.iter_all t.tree (fun _ v ->
      f (decode_row t v);
      true)

let count t = St.Btree.count t.tree

let subscribe t f = t.subscribers <- f :: t.subscribers

(* Recovery replay: raw B+-tree mutation, no re-logging, no notifications —
   index-side effects of a row change were logged (and are replayed) as their
   own records, so firing subscribers here would apply them twice. *)
let apply_op t (op : St.Wal.op) =
  match op with
  | St.Wal.Row_put { key; row } -> St.Btree.insert t.tree key row
  | St.Wal.Row_delete { key } -> ignore (St.Btree.delete t.tree key)
  | St.Wal.Score_update _ | St.Wal.Doc_insert _ | St.Wal.Doc_delete _
  | St.Wal.Doc_update _ | St.Wal.Maintain_step _ ->
      invalid_arg "Table.apply_op: text-index record routed to a table"
