(* Abstract syntax of the SQL subset (Section 3's specification language plus
   enough DML/queries to run the paper's examples end to end). *)

type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type agg = Avg | Sum | Min | Max | Count

type expr =
  | Lit of Value.t
  | Col of string option * string (* optional qualifier: alias or table *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Call of string * expr list (* user / built-in scalar functions *)
  | Agg of agg * expr
  | Count_star
  | Subquery of select (* scalar subquery *)

and order_by = { ob_expr : expr; descending : bool }

and select = {
  projections : proj list;
  from : (string * string option) option; (* table name, alias *)
  where : expr option;
  order : order_by option;
  fetch_top : int option; (* FETCH TOP n RESULTS ONLY *)
  deadline : int option;
      (* DEADLINE n (ms): per-statement wall allowance for an indexed top-k
         query; overrides the session default. The engine answers Degraded
         (bounded-error partial top-k) or Timed_out when it trips. *)
}

and proj = Star | Proj of expr * string option

type column_def = { col_name : string; col_ty : Value.ty }

type statement =
  | Create_table of { tbl : string; cols : column_def list; pk : string }
  | Create_function of {
      fname : string;
      params : (string * Value.ty) list;
      ret : Value.ty;
      body : expr;
    }
  | Create_text_index of {
      idx_name : string;
      tbl : string;
      text_col : string;
      method_name : string; (* id | score | score-threshold | chunk | ... *)
      score_funcs : string list;
          (* SVR component functions S1..Sm; the built-in "tfidf" adds the
             term-score component of Section 4.3.3 *)
      agg_func : string option; (* None: sum the components *)
      ts_weight : float option;
          (* WEIGHT w: weight of the TFIDF component in the combined score *)
      codec : string option;
          (* CODEC name: on-disk posting-list layout (varint | bitpack | pef);
             validated by the engine against Types.all_codecs *)
    }
  | Insert of { tbl : string; rows : expr list list }
  | Update of { tbl : string; assignments : (string * expr) list; where : expr option }
  | Delete of { tbl : string; where : expr option }
  | Rebuild_index of string (* offline merge of short lists (Section 5.1) *)
  | Maintain_index of { name : string; steps : int option }
    (* online compaction: drain short lists in bounded steps; STEP n caps
       the number of steps, the default runs until the short lists drain *)
  | Select of select

(* case-insensitive keyword equality used throughout the front end *)
let keyword_eq a b = String.lowercase_ascii a = String.lowercase_ascii b
