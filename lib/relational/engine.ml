module St = Svr_storage
module Core = Svr_core
module Serve = Svr_serve
open Sql_ast

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Sql_error m)) fmt

type result =
  | Done of string
  | Rows of { columns : string list; rows : Value.t array list }
  | Degraded of {
      columns : string list;
      rows : Value.t array list;
      bound : float;
      reason : string;
    }
  | Timed_out of { reason : string }
  | Rejected of { reason : string; retry_after_ms : float }

(* how exec_svr_select reports a budget trip up to the statement wrapper *)
type svr_note = Note_partial of float * string | Note_timeout of string

type func = { params : (string * Value.ty) list; ret : Value.ty; body : expr }

type text_index = {
  ti_name : string;
  ti_table : Table.t;
  ti_text_pos : int;
  ti_index : Core.Index.t;
  ti_score_funcs : string list;
  ti_agg : string option;
}

type t = {
  env : St.Env.t;
  tables : (string, Table.t) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  mutable indexes : text_index list;
  mutable deadline_ms : float; (* session default; 0 = off *)
  mutable admission : Serve.Admission.t option;
  mutable last_svr_note : svr_note option;
}

let norm = String.lowercase_ascii

let create ?env () =
  let env =
    match env with Some e -> e | None -> St.Env.create ()
  in
  { env; tables = Hashtbl.create 16; funcs = Hashtbl.create 16; indexes = [];
    deadline_ms = Core.Config.default.Core.Config.deadline_ms;
    admission = None; last_svr_note = None }

let env t = t.env

let set_deadline t ms =
  if not (Float.is_finite ms) || ms < 0.0 then
    fail "deadline must be finite and >= 0 ms (0 disables)";
  t.deadline_ms <- ms

let deadline t = t.deadline_ms

let set_admission t = function
  | None -> t.admission <- None
  | Some bound ->
      if bound < 1 then fail "admission queue bound must be >= 1";
      (* the cached health state closes the loop: Degraded tightens the
         shed ladder one tier, Critical admits only ungated DDL *)
      t.admission <-
        Some
          (Serve.Admission.create ~health:Svr_obs.Health.current ~bound ())

let admission t = t.admission

let table t name = Hashtbl.find_opt t.tables (norm name)

let table_names t =
  List.sort String.compare
    (Hashtbl.fold (fun _ tbl acc -> Table.name tbl :: acc) t.tables [])

let table_exn t name =
  match table t name with
  | Some tbl -> tbl
  | None -> fail "unknown table %s" name

let text_index t name =
  Option.map
    (fun ti -> ti.ti_index)
    (List.find_opt (fun ti -> norm ti.ti_name = norm name) t.indexes)

(* creation order (indexes are consed onto the list) *)
let text_indexes t = List.rev_map (fun ti -> (ti.ti_name, ti.ti_index)) t.indexes

let query_index_batch t ~index ?(domains = 1) ?(k = 10) batch =
  match text_index t index with
  | None -> fail "unknown text index %s" index
  | Some idx ->
      if domains < 1 then fail "query_index_batch: domains < 1";
      if domains = 1 then Core.Index.query_batch idx batch ~k
      else
        Core.Query_pool.with_pool ~domains (fun pool ->
            Core.Index.query_batch idx ~pool batch ~k)

(* ---------------------------------------------------------------- *)
(* expression evaluation *)

type ctx = {
  eng : t;
  (* the row in scope: alias (or table name), schema, values *)
  binding : (string * Schema.t * Value.t array) option;
  params : (string * Value.t) list;
}

let truthy = function
  | Value.Null -> false
  | Value.Int 0 -> false
  | Value.Float 0.0 -> false
  | _ -> true

let bool_v b = Value.Int (if b then 1 else 0)

let arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y when op <> Div ->
      Value.Int
        (match op with
        | Add -> x + y
        | Sub -> x - y
        | Mul -> x * y
        | _ -> assert false)
  | _ ->
      let x = Value.to_float a and y = Value.to_float b in
      Value.Float
        (match op with
        | Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div ->
            if y = 0.0 then fail "division by zero" else x /. y
        | _ -> assert false)

let compare_op op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ ->
      let c = Value.compare_sql a b in
      bool_v
        (match op with
        | Eq -> c = 0
        | Neq -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | _ -> assert false)

let rec eval ctx = function
  | Lit v -> v
  | Col (qual, name) -> eval_col ctx qual name
  | Neg e -> (
      match eval ctx e with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | Value.Null -> Value.Null
      | Value.Text _ -> fail "cannot negate text")
  (* NOT / AND / OR follow SQL's three-valued (Kleene) logic: unknown
     propagates unless the other operand decides the result *)
  | Not e -> (
      match eval ctx e with
      | Value.Null -> Value.Null
      | v -> bool_v (not (truthy v)))
  | Binop ((Add | Sub | Mul | Div) as op, a, b) -> arith op (eval ctx a) (eval ctx b)
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge) as op, a, b) ->
      compare_op op (eval ctx a) (eval ctx b)
  | Binop (And, a, b) -> (
      match eval ctx a with
      | Value.Null -> (
          match eval ctx b with
          | v when not (truthy v) && not (Value.is_null v) -> bool_v false
          | _ -> Value.Null)
      | v when not (truthy v) -> bool_v false
      | _ -> (
          match eval ctx b with
          | Value.Null -> Value.Null
          | v -> bool_v (truthy v)))
  | Binop (Or, a, b) -> (
      match eval ctx a with
      | Value.Null -> (
          match eval ctx b with
          | v when truthy v -> bool_v true
          | _ -> Value.Null)
      | v when truthy v -> bool_v true
      | _ -> (
          match eval ctx b with
          | Value.Null -> Value.Null
          | v -> bool_v (truthy v)))
  | Call (fname, args) -> eval_call ctx fname args
  | Subquery sel -> eval_scalar_select ctx sel
  | Agg _ | Count_star -> fail "aggregate used outside a SELECT projection"

and eval_col ctx qual name =
  let from_row =
    match ctx.binding with
    | Some (alias, schema, row) when
        (match qual with None -> true | Some q -> norm q = norm alias) -> (
        match Schema.position schema name with
        | Some i -> Some row.(i)
        | None -> None)
    | _ -> None
  in
  match from_row with
  | Some v -> v
  | None -> (
      match
        (match qual with
        | None -> List.assoc_opt (norm name) ctx.params
        | Some _ -> None)
      with
      | Some v -> v
      | None ->
          fail "unknown column or parameter %s%s"
            (match qual with Some q -> q ^ "." | None -> "")
            name)

and eval_call ctx fname args =
  match (norm fname, args) with
  | "abs", [ e ] -> (
      match eval ctx e with
      | Value.Int i -> Value.Int (abs i)
      | Value.Float f -> Value.Float (abs_float f)
      | v -> v)
  | "sqrt", [ e ] -> Value.Float (sqrt (Value.to_float (eval ctx e)))
  | "ln", [ e ] -> Value.Float (log (Value.to_float (eval ctx e)))
  | "coalesce", es ->
      let rec first = function
        | [] -> Value.Null
        | e :: rest -> (
            match eval ctx e with Value.Null -> first rest | v -> v)
      in
      first es
  | "score", _ ->
      fail "score() is only allowed in ORDER BY of a SELECT over an indexed table"
  | name, args -> (
      match Hashtbl.find_opt ctx.eng.funcs name with
      | None -> fail "unknown function %s" name
      | Some f ->
          if List.length args <> List.length f.params then
            fail "%s expects %d arguments" name (List.length f.params);
          let bound =
            List.map2 (fun (p, _ty) arg -> (norm p, eval ctx arg)) f.params args
          in
          eval { ctx with binding = None; params = bound } f.body)

and eval_scalar_select ctx sel =
  match exec_select ctx.eng ~params:ctx.params sel with
  | _, [] -> Value.Null
  | _, [| v |] :: _ -> v
  | _ -> fail "scalar subquery returned more than one column"

(* ---------------------------------------------------------------- *)
(* SELECT execution *)

and proj_name i = function
  | Star -> assert false
  | Proj (_, Some alias) -> alias
  | Proj (Col (_, name), None) -> name
  | Proj (Agg (Avg, _), None) -> "avg"
  | Proj (Agg (Sum, _), None) -> "sum"
  | Proj (Agg (Min, _), None) -> "min"
  | Proj (Agg (Max, _), None) -> "max"
  | Proj ((Agg (Count, _) | Count_star), None) -> "count"
  | Proj (_, None) -> Printf.sprintf "column%d" (i + 1)

and has_aggregate sel =
  List.exists
    (function
      | Proj (Agg _, _) | Proj (Count_star, _) -> true
      | Star | Proj _ -> false)
    sel.projections

(* does the ORDER BY ask for SVR ranking? *)
and svr_order sel =
  match sel.order with
  | Some { ob_expr = Call (f, [ col; Lit (Value.Text keywords) ]); descending = _ }
    when norm f = "score" -> (
      match col with
      | Col (_, col_name) -> Some (col_name, keywords)
      | _ -> None)
  | _ -> None

and exec_select eng ?(params = []) sel =
  match sel.from with
  | None ->
      if List.mem Star sel.projections then fail "SELECT * requires a FROM clause";
      let ctx = { eng; binding = None; params } in
      let columns = List.mapi (fun i p -> proj_name i p) sel.projections in
      let row =
        Array.of_list
          (List.map
             (function
               | Star -> fail "SELECT * requires a FROM clause"
               | Proj (e, _) -> eval ctx e)
             sel.projections)
      in
      (columns, [ row ])
  | Some (tbl_name, alias) -> (
      let tbl = table_exn eng tbl_name in
      let alias = Option.value ~default:tbl_name alias in
      let schema = Table.schema tbl in
      let row_ctx row = { eng; binding = Some (alias, schema, row); params } in
      let passes_where row =
        match sel.where with
        | None -> true
        | Some w -> truthy (eval (row_ctx row) w)
      in
      match svr_order sel with
      | Some (col_name, keywords) ->
          exec_svr_select eng sel tbl ~alias ~col_name ~keywords ~passes_where
      | None ->
          let matching = ref [] in
          Table.scan tbl (fun row -> if passes_where row then matching := row :: !matching);
          let matching = List.rev !matching in
          if has_aggregate sel then begin
            let columns = List.mapi (fun i p -> proj_name i p) sel.projections in
            let agg_value = function
              | Star -> fail "SELECT * cannot be mixed with aggregates"
              | Proj (Count_star, _) -> Value.Int (List.length matching)
              | Proj (Agg (kind, e), _) -> (
                  let vals =
                    List.filter_map
                      (fun row ->
                        match eval (row_ctx row) e with
                        | Value.Null -> None
                        | v -> Some v)
                      matching
                  in
                  match (kind, vals) with
                  | _, [] -> Value.Null
                  | Count, vs -> Value.Int (List.length vs)
                  | Sum, vs ->
                      List.fold_left (fun acc v -> arith Add acc v) (Value.Int 0) vs
                  | Avg, vs ->
                      Value.Float
                        (List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs
                        /. float_of_int (List.length vs))
                  | Min, v :: vs ->
                      List.fold_left
                        (fun acc v -> if Value.compare_sql v acc < 0 then v else acc)
                        v vs
                  | Max, v :: vs ->
                      List.fold_left
                        (fun acc v -> if Value.compare_sql v acc > 0 then v else acc)
                        v vs)
              | Proj (e, _) -> (
                  (* non-aggregate projection in an aggregate query: evaluate
                     on the first row, SQLite-style leniency *)
                  match matching with
                  | [] -> Value.Null
                  | row :: _ -> eval (row_ctx row) e)
            in
            (columns, [ Array.of_list (List.map agg_value sel.projections) ])
          end
          else begin
            let ordered =
              match sel.order with
              | None -> matching
              | Some { ob_expr; descending } ->
                  let keyed =
                    List.map (fun row -> (eval (row_ctx row) ob_expr, row)) matching
                  in
                  let sorted =
                    List.stable_sort
                      (fun (a, _) (b, _) -> Value.compare_sql a b)
                      keyed
                  in
                  let sorted = if descending then List.rev sorted else sorted in
                  List.map snd sorted
            in
            let limited =
              match sel.fetch_top with
              | None -> ordered
              | Some n -> List.filteri (fun i _ -> i < n) ordered
            in
            project eng ~params sel ~alias ~schema limited ~score:None
          end)

(* top-k keyword query answered by the text index *)
and exec_svr_select eng sel tbl ~alias ~col_name ~keywords ~passes_where =
  let ti =
    match
      List.find_opt
        (fun ti ->
          ti.ti_table == tbl
          && Schema.position (Table.schema tbl) col_name = Some ti.ti_text_pos)
        eng.indexes
    with
    | Some ti -> ti
    | None -> fail "no text index on %s(%s)" (Table.name tbl) col_name
  in
  let k = Option.value ~default:10 sel.fetch_top in
  (* the statement's DEADLINE overrides the session default; 0 keeps the
     historical unbudgeted path *)
  let deadline_ms =
    match sel.deadline with
    | Some n -> float_of_int n
    | None -> eng.deadline_ms
  in
  let ranked =
    if deadline_ms > 0.0 then begin
      let budget = Core.Budget.create ~deadline_ms () in
      match Core.Index.query_outcome ti.ti_index ~budget [ keywords ] ~k with
      | Core.Index.Complete r -> r
      | Core.Index.Partial { results; bound; reason } ->
          eng.last_svr_note <-
            Some (Note_partial (bound, Core.Budget.reason_name reason));
          results
      | Core.Index.Timed_out reason ->
          eng.last_svr_note <-
            Some (Note_timeout (Core.Budget.reason_name reason));
          []
    end
    else Core.Index.query ti.ti_index [ keywords ] ~k
  in
  let schema = Table.schema tbl in
  let rows =
    List.filter_map
      (fun (doc, score) ->
        match Table.get tbl (Value.Int doc) with
        | Some row when passes_where row -> Some (row, score)
        | _ -> None)
      ranked
  in
  project eng ~params:[] sel ~alias ~schema (List.map fst rows)
    ~score:(Some (List.map snd rows))

and project eng ~params sel ~alias ~schema rows ~score =
  let base_columns = List.map (fun c -> c.Schema.name) (Schema.columns schema) in
  let columns =
    List.concat_map
      (function
        | Star -> base_columns @ (if score <> None then [ "score" ] else [])
        | p -> [ proj_name 0 p ])
      sel.projections
    |> fun cols ->
    (* keep positional names unique enough for display *)
    List.mapi (fun i c -> if c = "column1" then Printf.sprintf "column%d" (i + 1) else c) cols
  in
  let scores = match score with Some s -> s | None -> List.map (fun _ -> 0.0) rows in
  let out =
    List.map2
      (fun row s ->
        Array.of_list
          (List.concat_map
             (function
               | Star ->
                   Array.to_list row
                   @ (if score <> None then [ Value.Float s ] else [])
               | Proj (e, _) ->
                   [ eval { eng; binding = Some (alias, schema, row); params } e ])
             sel.projections))
      rows scores
  in
  (columns, out)

(* ---------------------------------------------------------------- *)
(* SVR score specification (Section 3): components + aggregation *)

let component_score eng fname pk =
  match Hashtbl.find_opt eng.funcs (norm fname) with
  | None -> fail "unknown scoring function %s" fname
  | Some f -> (
      let param_name =
        match f.params with
        | [ (p, _) ] -> norm p
        | _ -> fail "scoring function %s must take exactly one argument" fname
      in
      match eval { eng; binding = None; params = [ (param_name, pk) ] } f.body with
      | Value.Null -> 0.0
      | v -> Value.to_float v)

let spec_score_of eng ~score_funcs ~agg pk =
  let components = List.map (fun f -> component_score eng f pk) score_funcs in
  match agg with
  | None -> List.fold_left ( +. ) 0.0 components
  | Some agg -> (
      match Hashtbl.find_opt eng.funcs (norm agg) with
      | None -> fail "unknown aggregation function %s" agg
      | Some f ->
          if List.length f.params <> List.length components then
            fail "%s expects %d arguments, got %d components" agg
              (List.length f.params) (List.length components);
          let params =
            List.map2 (fun (p, _) c -> (norm p, Value.Float c)) f.params components
          in
          Value.to_float (eval { eng; binding = None; params } f.body))

let spec_score eng ti =
  spec_score_of eng ~score_funcs:ti.ti_score_funcs ~agg:ti.ti_agg

let svr_score eng ~index ~doc =
  match List.find_opt (fun ti -> norm ti.ti_name = norm index) eng.indexes with
  | None -> fail "unknown text index %s" index
  | Some ti -> spec_score eng ti (Value.Int doc)

(* dependency extraction: (table, correlation column) pairs read by a
   function body through [SELECT ... FROM T WHERE T.c = param] subqueries;
   [None] as the column means "shape not recognised: recompute on any
   change to that table" *)
let rec dependencies_of_expr funcs params e acc =
  match e with
  | Lit _ | Col _ | Count_star -> acc
  | Neg e | Not e | Agg (_, e) -> dependencies_of_expr funcs params e acc
  | Binop (_, a, b) ->
      dependencies_of_expr funcs params a (dependencies_of_expr funcs params b acc)
  | Call (fname, args) -> (
      let acc =
        List.fold_left (fun acc a -> dependencies_of_expr funcs params a acc) acc args
      in
      match Hashtbl.find_opt funcs (norm fname) with
      | None -> acc
      | Some (f : func) ->
          dependencies_of_expr funcs (List.map (fun (p, _) -> norm p) f.params) f.body acc)
  | Subquery sel -> (
      let acc =
        List.fold_left
          (fun acc p ->
            match p with
            | Star -> acc
            | Proj (e, _) -> dependencies_of_expr funcs params e acc)
          acc sel.projections
      in
      let acc =
        match sel.where with
        | None -> acc
        | Some w -> dependencies_of_expr funcs params w acc
      in
      match sel.from with
      | None -> acc
      | Some (tbl, _) ->
          let correlation =
            let rec find = function
              | Binop (Eq, Col (_, c), Col (None, p)) when List.mem (norm p) params ->
                  Some c
              | Binop (Eq, Col (None, p), Col (_, c)) when List.mem (norm p) params ->
                  Some c
              | Binop (And, a, b) -> ( match find a with Some c -> Some c | None -> find b)
              | _ -> None
            in
            Option.bind sel.where find
          in
          (norm tbl, correlation) :: acc)

let dependencies eng ti =
  List.concat_map
    (fun fname ->
      match Hashtbl.find_opt eng.funcs (norm fname) with
      | None -> []
      | Some f ->
          dependencies_of_expr eng.funcs
            (List.map (fun (p, _) -> norm p) f.params)
            f.body [])
    ti.ti_score_funcs

(* ---------------------------------------------------------------- *)
(* text index creation and maintenance *)

let doc_of_pk = function
  | Value.Int i -> i
  | v -> fail "text-indexed tables need integer primary keys, got %s" (Value.to_text v)

let refresh_doc eng ti pk =
  match Table.get ti.ti_table pk with
  | None -> ()
  | Some _ ->
      Core.Index.score_update ti.ti_index ~doc:(doc_of_pk pk)
        (spec_score eng ti pk)

let refresh_all eng ti =
  Table.scan ti.ti_table (fun row ->
      refresh_doc eng ti row.(Schema.pk_position (Table.schema ti.ti_table)))

let install_triggers eng ti =
  (* base-table changes: document lifecycle *)
  let schema = Table.schema ti.ti_table in
  let pk_pos = Schema.pk_position schema in
  Table.subscribe ti.ti_table (fun change ->
      match change with
      | Table.Inserted row ->
          let pk = row.(pk_pos) in
          Core.Index.insert ti.ti_index ~doc:(doc_of_pk pk)
            (Value.to_text row.(ti.ti_text_pos))
            ~score:(spec_score eng ti pk)
      | Table.Deleted row -> Core.Index.delete ti.ti_index ~doc:(doc_of_pk row.(pk_pos))
      | Table.Updated { before; after } ->
          let doc = doc_of_pk after.(pk_pos) in
          if
            not
              (String.equal
                 (Value.to_text before.(ti.ti_text_pos))
                 (Value.to_text after.(ti.ti_text_pos)))
          then
            Core.Index.update_content ti.ti_index ~doc
              (Value.to_text after.(ti.ti_text_pos));
          (* the score may read the base table itself *)
          refresh_doc eng ti after.(pk_pos));
  (* scoring-component dependencies: incremental view maintenance *)
  List.iter
    (fun (dep_tbl, correlation) ->
      match Hashtbl.find_opt eng.tables dep_tbl with
      | None -> fail "scoring function reads unknown table %s" dep_tbl
      | Some dep when dep == ti.ti_table -> () (* covered above *)
      | Some dep -> (
          match correlation with
          | Some col -> (
              match Schema.position (Table.schema dep) col with
              | None ->
                  fail "scoring function correlates on unknown column %s.%s" dep_tbl col
              | Some pos ->
                  Table.subscribe dep (fun change ->
                      let affected =
                        match change with
                        | Table.Inserted row | Table.Deleted row -> [ row.(pos) ]
                        | Table.Updated { before; after } ->
                            [ before.(pos); after.(pos) ]
                      in
                      List.sort_uniq compare affected
                      |> List.iter (fun pk -> refresh_doc eng ti pk)))
          | None ->
              (* unrecognised shape: conservative full refresh *)
              Table.subscribe dep (fun _ -> refresh_all eng ti)))
    (dependencies eng ti)

let create_text_index eng ~idx_name ~tbl ~text_col ~method_name ~score_funcs
    ~agg_func ~ts_weight ~codec =
  if List.exists (fun ti -> norm ti.ti_name = norm idx_name) eng.indexes then
    fail "text index %s already exists" idx_name;
  let table = table_exn eng tbl in
  let schema = Table.schema table in
  let text_pos =
    match Schema.position schema text_col with
    | Some i when (List.nth (Schema.columns schema) i).Schema.ty = Value.Text_t -> i
    | Some _ -> fail "%s.%s is not a text column" tbl text_col
    | None -> fail "unknown column %s.%s" tbl text_col
  in
  (* the built-in TFIDF() component (Section 3.1) is not part of the
     materialized view: it selects a *-TermScore method and is combined at
     query time (Section 3.2 / 4.3.3) *)
  let wants_tfidf = List.exists (fun f -> norm f = "tfidf") score_funcs in
  let score_funcs = List.filter (fun f -> norm f <> "tfidf") score_funcs in
  let kind =
    match (Core.Index.kind_of_name method_name, wants_tfidf) with
    | Some k, false -> k
    | Some Core.Index.Id, true | Some Core.Index.Id_termscore, true ->
        Core.Index.Id_termscore
    | Some Core.Index.Chunk, true | Some Core.Index.Chunk_termscore, true ->
        Core.Index.Chunk_termscore
    | Some k, true ->
        fail "method %s cannot combine TFIDF(); use chunk or id"
          (Core.Index.kind_name k)
    | None, _ -> fail "unknown index method %s" method_name
  in
  let codec =
    match codec with
    | None -> Core.Types.Varint
    | Some name -> (
        match Core.Types.codec_of_name name with
        | Some c -> c
        | None ->
            fail "unknown codec %s (expected %s)" name
              (String.concat ", "
                 (List.map Core.Types.codec_name Core.Types.all_codecs)))
  in
  let cfg =
    { Core.Config.default with
      Core.Config.ts_weight = Option.value ~default:1.0 ts_weight;
      codec;
      (* SQL has no gallop knob, so SELECT plans from the stats catalog *)
      planner = Core.Config.Auto }
  in
  let pk_pos = Schema.pk_position schema in
  let corpus = ref [] in
  Table.scan table (fun row ->
      corpus := (doc_of_pk row.(pk_pos), Value.to_text row.(text_pos)) :: !corpus);
  let corpus = List.rev !corpus in
  (* evaluating the spec here also validates the functions before bulk load *)
  let score_cache = Hashtbl.create (max 16 (List.length corpus)) in
  List.iter
    (fun (doc, _) ->
      Hashtbl.replace score_cache doc
        (spec_score_of eng ~score_funcs ~agg:agg_func (Value.Int doc)))
    corpus;
  let ti =
    { ti_name = idx_name; ti_table = table; ti_text_pos = text_pos;
      ti_index =
        Core.Index.build ~env:eng.env ~tag:(norm idx_name) kind cfg
          ~corpus:(List.to_seq corpus)
          ~scores:(fun doc -> Hashtbl.find score_cache doc);
      ti_score_funcs = score_funcs; ti_agg = agg_func }
  in
  eng.indexes <- ti :: eng.indexes;
  install_triggers eng ti

(* ---------------------------------------------------------------- *)
(* statements *)

let statement_kind = function
  | Create_table _ -> "create-table"
  | Create_function _ -> "create-function"
  | Create_text_index _ -> "create-text-index"
  | Rebuild_index _ -> "rebuild-index"
  | Maintain_index _ -> "maintain-index"
  | Insert _ -> "insert"
  | Update _ -> "update"
  | Delete _ -> "delete"
  | Select _ -> "select"

let run_statement eng = function
  | Create_table { tbl; cols; pk } ->
      if Hashtbl.mem eng.tables (norm tbl) then fail "table %s already exists" tbl;
      let schema =
        Schema.make
          ~columns:
            (List.map (fun c -> { Schema.name = c.col_name; ty = c.col_ty }) cols)
          ~primary_key:pk
      in
      Hashtbl.replace eng.tables (norm tbl) (Table.create eng.env ~name:tbl schema);
      Done (Printf.sprintf "table %s created" tbl)
  | Create_function { fname; params; ret; body } ->
      Hashtbl.replace eng.funcs (norm fname) { params; ret; body };
      Done (Printf.sprintf "function %s created" fname)
  | Create_text_index
      { idx_name; tbl; text_col; method_name; score_funcs; agg_func; ts_weight;
        codec } ->
      create_text_index eng ~idx_name ~tbl ~text_col ~method_name ~score_funcs
        ~agg_func ~ts_weight ~codec;
      Done
        (Printf.sprintf "text index %s created (%s method, %s codec)" idx_name
           method_name
           (Core.Types.codec_name
              (match
                 List.find_opt
                   (fun ti -> norm ti.ti_name = norm idx_name)
                   eng.indexes
               with
              | Some ti -> Core.Index.codec ti.ti_index
              | None -> Core.Types.Varint)))
  | Rebuild_index name -> (
      match List.find_opt (fun ti -> norm ti.ti_name = norm name) eng.indexes with
      | None -> fail "unknown text index %s" name
      | Some ti -> (
          match Core.Index.rebuild ti.ti_index with
          | Core.Index.Rebuilt -> Done (Printf.sprintf "text index %s rebuilt" name)
          | Core.Index.Purged n ->
              Done
                (Printf.sprintf "text index %s rebuilt (%d deleted document(s) purged)"
                   name n)
          | Core.Index.Nothing_to_rebuild ->
              Done
                (Printf.sprintf
                   "text index %s: nothing to rebuild (score-ordered list is \
                    maintained in place)"
                   name)))
  | Maintain_index { name; steps } -> (
      match List.find_opt (fun ti -> norm ti.ti_name = norm name) eng.indexes with
      | None -> fail "unknown text index %s" name
      | Some ti ->
          let s = Core.Index.maintain ?steps ti.ti_index in
          Done
            (Printf.sprintf
               "text index %s: %d step(s) drained %d posting(s) over %d term(s); \
                %d posting(s) remain in short lists"
               name s.Core.Index.steps s.Core.Index.postings_drained
               s.Core.Index.terms_drained
               (Core.Index.short_list_postings ti.ti_index)))
  | Insert { tbl; rows } ->
      let table = table_exn eng tbl in
      let ctx = { eng; binding = None; params = [] } in
      List.iter
        (fun exprs ->
          Table.insert table (Array.of_list (List.map (eval ctx) exprs)))
        rows;
      Done (Printf.sprintf "%d row(s) inserted" (List.length rows))
  | Update { tbl; assignments; where } ->
      let table = table_exn eng tbl in
      let schema = Table.schema table in
      let targets =
        List.map
          (fun (col, e) ->
            match Schema.position schema col with
            | Some i -> (i, e)
            | None -> fail "unknown column %s.%s" tbl col)
          assignments
      in
      let matching = ref [] in
      Table.scan table (fun row ->
          let ctx = { eng; binding = Some (tbl, schema, row); params = [] } in
          let keep = match where with None -> true | Some w -> truthy (eval ctx w) in
          if keep then matching := row :: !matching);
      List.iter
        (fun row ->
          let ctx = { eng; binding = Some (tbl, schema, row); params = [] } in
          let updated = Array.copy row in
          List.iter (fun (i, e) -> updated.(i) <- eval ctx e) targets;
          Table.update table updated)
        !matching;
      Done (Printf.sprintf "%d row(s) updated" (List.length !matching))
  | Delete { tbl; where } ->
      let table = table_exn eng tbl in
      let schema = Table.schema table in
      let pks = ref [] in
      Table.scan table (fun row ->
          let ctx = { eng; binding = Some (tbl, schema, row); params = [] } in
          let keep = match where with None -> true | Some w -> truthy (eval ctx w) in
          if keep then pks := row.(Schema.pk_position schema) :: !pks);
      List.iter (fun pk -> ignore (Table.delete table pk)) !pks;
      Done (Printf.sprintf "%d row(s) deleted" (List.length !pks))
  | Select sel -> (
      eng.last_svr_note <- None;
      let columns, rows = exec_select eng sel in
      match eng.last_svr_note with
      | Some (Note_partial (bound, reason)) ->
          Degraded { columns; rows; bound; reason }
      | Some (Note_timeout reason) -> Timed_out { reason }
      | None -> Rows { columns; rows })

(* Statement-level admission classes: queries keep the full queue bound,
   DML shares the update tier, index maintenance the lowest one. DDL is
   never gated — shedding a CREATE TABLE protects nothing. *)
let statement_class = function
  | Select _ -> Some Serve.Admission.Query
  | Insert _ | Update _ | Delete _ -> Some Serve.Admission.Update
  | Maintain_index _ | Rebuild_index _ -> Some Serve.Admission.Maintenance
  | Create_table _ | Create_function _ | Create_text_index _ -> None

(* The trace root for the whole SQL statement: index-level query/update roots
   opened further down nest under it, so one .explain shows the full path
   from SQL dispatch to the method's stop decision. *)
let exec_statement eng stmt =
  (* the engine's observation heartbeat: time-series snapshots ride the
     statement cadence, and when admission is gating, health is refreshed
     so the next decision reads current pressure *)
  Svr_obs.Timeseries.maybe_tick (Svr_obs.Timeseries.shared ());
  if eng.admission <> None then ignore (Svr_obs.Health.evaluate ());
  let scls = statement_class stmt in
  let cls_name =
    match scls with Some c -> Serve.Admission.cls_name c | None -> "ddl"
  in
  let gate =
    match (eng.admission, scls) with
    | Some adm, Some cls -> (
        match Serve.Admission.try_admit adm cls with
        | Ok () -> Ok (Some adm)
        | Error r -> Error r)
    | _ -> Ok None
  in
  match gate with
  | Error { Serve.Admission.reason; retry_after_ms } ->
      Svr_obs.Events.emit ~reason ~cls:cls_name Svr_obs.Events.Shed;
      Rejected { reason; retry_after_ms }
  | Ok held ->
      Fun.protect
        ~finally:(fun () -> Option.iter Serve.Admission.release held)
        (fun () ->
          let sp = Svr_obs.Trace.root "statement" in
          if Svr_obs.Trace.is_on sp then
            Svr_obs.Trace.annotate sp "kind" (statement_kind stmt);
          let trace = Svr_obs.Trace.trace_id sp in
          let t0 = Svr_obs.Clock.now_ms () in
          Core.Qobs.note_strategy "";
          let emit ?reason terminal =
            if scls <> None then
              Svr_obs.Events.emit ?reason
                ~strategy:(Core.Qobs.last_strategy ())
                ~service_ms:(Svr_obs.Clock.now_ms () -. t0)
                ~trace ~cls:cls_name terminal
          in
          match
            Fun.protect
              ~finally:(fun () -> Svr_obs.Trace.pop sp)
              (fun () -> run_statement eng stmt)
          with
          | exception e ->
              emit ~reason:(Printexc.to_string e) Svr_obs.Events.Failed;
              raise e
          | Degraded { reason; _ } as r ->
              emit ~reason Svr_obs.Events.Partial;
              r
          | Timed_out { reason } as r ->
              emit ~reason Svr_obs.Events.Timed_out;
              r
          | r ->
              emit Svr_obs.Events.Complete;
              r)

(* ---------------------------------------------------------------- *)
(* durability: checkpoint / crash / recover over the whole engine *)

let checkpoint eng = St.Env.checkpoint eng.env

let crash eng = St.Env.crash eng.env

(* Replay in append order, routing each record by its tag: "table:NAME" to
   that table's raw B+-tree path (no subscriber notification — the index
   effects were logged separately and follow in the same scan), anything
   else to the text index of that name. The engine object itself models the
   restarted process's catalog, so every tag written before the crash has a
   live component to land on; a record whose component is gone can only come
   from DDL after the last checkpoint, which — like bulk builds — is
   documented as not crash-recoverable, so it is dropped. *)
let recover eng =
  let records = St.Env.recover eng.env in
  List.iter
    (fun { St.Wal.tag; op } ->
      match op with
      | St.Wal.Row_put _ | St.Wal.Row_delete _ ->
          let tbl_name =
            if String.length tag > 6 && String.sub tag 0 6 = "table:" then
              String.sub tag 6 (String.length tag - 6)
            else tag
          in
          Option.iter (fun tbl -> Table.apply_op tbl op)
            (Hashtbl.find_opt eng.tables (norm tbl_name))
      | St.Wal.Score_update _ | St.Wal.Doc_insert _ | St.Wal.Doc_delete _
      | St.Wal.Doc_update _ | St.Wal.Maintain_step _ ->
          Option.iter (fun ti -> Core.Index.apply_op ti.ti_index op)
            (List.find_opt (fun ti -> norm ti.ti_name = norm tag) eng.indexes))
    records;
  St.Env.checkpoint eng.env;
  records

let wrap f =
  try f () with
  | Sql_lexer.Lex_error m -> raise (Sql_error ("lex error: " ^ m))
  | Sql_parser.Parse_error m -> raise (Sql_error ("parse error: " ^ m))
  | Invalid_argument m -> raise (Sql_error m)
  | Core.Index.Invalid_score m -> raise (Sql_error ("invalid score: " ^ m))

let exec eng src =
  wrap (fun () -> List.map (exec_statement eng) (Sql_parser.parse src))

let exec_one eng src =
  wrap (fun () -> exec_statement eng (Sql_parser.parse_one src))

let query_rows eng src =
  match exec_one eng src with
  | Rows { columns; rows } | Degraded { columns; rows; _ } -> (columns, rows)
  | Done msg -> fail "expected rows, statement said: %s" msg
  | Timed_out { reason } -> fail "query timed out (%s)" reason
  | Rejected { reason; _ } -> fail "query rejected: %s" reason

let pp_rows ppf columns rows =
  Format.fprintf ppf "%s@." (String.concat " | " columns);
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@."
        (String.concat " | "
           (List.map (Format.asprintf "%a" Value.pp) (Array.to_list row))))
    rows

let pp_result ppf = function
  | Done msg -> Format.fprintf ppf "%s" msg
  | Rows { columns; rows } -> pp_rows ppf columns rows
  | Degraded { columns; rows; bound; reason } ->
      pp_rows ppf columns rows;
      Format.fprintf ppf
        "-- degraded answer (%s): returned scores are exact; any document \
         not shown scores at most %.4f"
        reason bound
  | Timed_out { reason } ->
      Format.fprintf ppf
        "-- timed out (%s): this method's scan order admits no partial answer"
        reason
  | Rejected { reason; retry_after_ms } ->
      Format.fprintf ppf "-- rejected: %s; retry after %.0f ms" reason
        retry_after_ms
