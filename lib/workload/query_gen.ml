type selectivity = Unselective | Medium | Selective | Rare_over_dense

let pool_size (cp : Corpus_gen.params) sel =
  (* 350 / 1600 / 15000 at the paper's 200k vocabulary, proportional below;
     graded floors keep the three classes distinct on tiny scaled corpora *)
  let base, floor =
    match sel with
    | Unselective -> (350, 8)
    | Medium -> (1600, 20)
    | Selective | Rare_over_dense -> (15000, 80)
  in
  min cp.Corpus_gen.vocab_size
    (max floor (base * cp.Corpus_gen.vocab_size / 200_000))

type params = {
  n_queries : int;
  keywords_per_query : int;
  selectivity : selectivity;
  seed : int;
}

let defaults =
  { n_queries = 50; keywords_per_query = 2; selectivity = Medium; seed = 11 }

(* draw [remaining] distinct keywords from [pool] on top of [acc] *)
let rec draw rng pool acc remaining =
  if remaining = 0 then acc
  else begin
    let kw = pool.(Rng.int rng (Array.length pool)) in
    if List.mem kw acc then draw rng pool acc remaining
    else draw rng pool (kw :: acc) (remaining - 1)
  end

let generate p cp =
  let rng = Rng.create p.seed in
  match p.selectivity with
  | Unselective | Medium | Selective ->
      let pool = Corpus_gen.frequent_terms cp ~pool:(pool_size cp p.selectivity) in
      Array.init p.n_queries (fun _ ->
          draw rng pool [] (min p.keywords_per_query (Array.length pool)))
  | Rare_over_dense ->
      (* one rare keyword (bottom quarter of the selective-class pool) paired
         with dense head-of-vocabulary keywords: the intersection is driven
         by the rare term's few postings, so a skip-aware conjunctive merge
         leaps over most blocks of the dense lists *)
      let dense =
        Corpus_gen.frequent_terms cp ~pool:(pool_size cp Unselective)
      in
      let wide = Corpus_gen.frequent_terms cp ~pool:(pool_size cp Selective) in
      let tail_start = 3 * Array.length wide / 4 in
      let rare = Array.sub wide tail_start (Array.length wide - tail_start) in
      Array.init p.n_queries (fun _ ->
          let r = rare.(Rng.int rng (Array.length rare)) in
          let n_dense =
            min (p.keywords_per_query - 1)
              (Array.length dense - if Array.mem r dense then 1 else 0)
          in
          draw rng dense [ r ] n_dense)
