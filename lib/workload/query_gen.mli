(** Keyword-query workloads (Section 5.1).

    Keywords are drawn uniformly from a pool of the most frequent vocabulary
    terms. The paper's three classes, at full scale: unselective = top 350
    terms, medium = top 1600, selective = top 15000; pools scale with the
    vocabulary when the corpus is scaled down.

    [Rare_over_dense] is an additional skew class (not from the paper): each
    query pairs one rare keyword — drawn from the bottom quarter of the
    selective pool — with dense head-of-vocabulary keywords, the asymmetry
    under which a skip-aware conjunctive merge shines. *)

type selectivity = Unselective | Medium | Selective | Rare_over_dense

val pool_size : Corpus_gen.params -> selectivity -> int
(** The class's pool size, scaled in proportion to the vocabulary. *)

type params = {
  n_queries : int;
  keywords_per_query : int;  (** the paper uses 2 *)
  selectivity : selectivity;
  seed : int;
}

val defaults : params

val generate : params -> Corpus_gen.params -> string list array
(** [n_queries] keyword lists (distinct keywords within a query). *)
