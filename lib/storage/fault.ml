(* Seeded xorshift64* stream shared by every device of an environment: the
   update path is single-threaded, so the sequence of tick_write/tick_read
   calls — and therefore every injected failure — is a deterministic function
   of (seed, workload). *)

exception Crash of string

type t = {
  mutable state : int64;
  mutable writes : int;
  mutable reads : int;
  mutable crash_at : int; (* crash when [writes] reaches this; 0 = disarmed *)
  mutable read_fail_rate : float;
  mutable bitflip_rate : float;
  mutable consecutive_fails : int;
  max_consecutive : int;
  mutable read_stall_rate : float;
  mutable read_stall_ms : int;
  mutable write_stall_rate : float;
  mutable write_stall_ms : int;
}

let create ?(crash_at_write = 0) ?(read_fail_rate = 0.0) ?(bitflip_rate = 0.0)
    ?(max_consecutive_read_fails = 2) ?(read_stall_rate = 0.0)
    ?(read_stall_ms = 0) ?(write_stall_rate = 0.0) ?(write_stall_ms = 0) ~seed
    () =
  { state = Int64.of_int ((seed * 2654435761) lor 1);
    writes = 0; reads = 0; crash_at = crash_at_write;
    read_fail_rate; bitflip_rate; consecutive_fails = 0;
    max_consecutive = max 1 max_consecutive_read_fails;
    read_stall_rate; read_stall_ms; write_stall_rate; write_stall_ms }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  x

let uniform t =
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. (1.0 /. 9007199254740992.0)

let int_below t n = Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let writes_seen t = t.writes
let reads_seen t = t.reads

let arm_crash t ~after =
  if after <= 0 then invalid_arg "Fault.arm_crash: after must be positive";
  t.crash_at <- t.writes + after

let disarm t = t.crash_at <- 0

let tick_write t ~device =
  t.writes <- t.writes + 1;
  if t.crash_at > 0 && t.writes >= t.crash_at then begin
    t.crash_at <- 0;
    (* raised BEFORE the page write is applied: page writes are atomic, so a
       crash mid multi-page operation tears it at a page boundary *)
    raise (Crash (Printf.sprintf "simulated crash at write #%d on %s" t.writes device))
  end

let should_fail_read t =
  t.reads <- t.reads + 1;
  if t.read_fail_rate <= 0.0 then false
  else if t.consecutive_fails >= t.max_consecutive then begin
    (* bound runs of failures so a bounded retry loop always succeeds *)
    t.consecutive_fails <- 0;
    false
  end
  else if uniform t < t.read_fail_rate then begin
    t.consecutive_fails <- t.consecutive_fails + 1;
    true
  end
  else begin
    t.consecutive_fails <- 0;
    false
  end

let set_read_fail_rate t r = t.read_fail_rate <- r

let set_read_stall t ~rate ~ms =
  t.read_stall_rate <- rate;
  t.read_stall_ms <- ms

let set_write_stall t ~rate ~ms =
  t.write_stall_rate <- rate;
  t.write_stall_ms <- ms

(* latency faults draw from the same seeded stream as failures, so the exact
   set of stalled operations replays from (seed, workload) — that is what
   makes deadline and circuit-breaker tests deterministic *)
let read_stall t =
  if t.read_stall_rate > 0.0 && uniform t < t.read_stall_rate then
    t.read_stall_ms
  else 0

let write_stall t =
  if t.write_stall_rate > 0.0 && uniform t < t.write_stall_rate then
    t.write_stall_ms
  else 0

let maybe_flip t bytes =
  if t.bitflip_rate > 0.0 && uniform t < t.bitflip_rate then begin
    let nbits = 8 * Bytes.length bytes in
    if nbits = 0 then false
    else begin
      let bit = int_below t nbits in
      let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
      Bytes.set bytes byte (Char.chr (Char.code (Bytes.get bytes byte) lxor mask));
      true
    end
  end
  else false
