(** A simulated block device: a growable array of fixed-size pages.

    Stands in for the files BerkeleyDB would keep on disk. Every physical
    access is recorded in a shared {!Stats.t}; reads of the page following the
    previously read page are classified sequential, everything else random.
    All accesses normally go through a {!Buffer_pool}, so a [Disk] read/write
    here corresponds to a cache miss / write-back in the real system.

    Concurrency: {!read} is lock-free and safe from any number of domains
    (the seq/rand classification interleaves across concurrent readers, as it
    would on a real shared spindle). {!alloc}, {!alloc_run} and {!write} are
    single-writer — the update path must not run concurrently with itself,
    though lock-free readers may overlap an allocation safely. *)

type t

val page_size : t -> int

val create : ?page_size:int -> name:string -> Stats.t -> t
(** [create ~name stats] makes an empty device. [page_size] defaults to
    4096 bytes, the BerkeleyDB default used in the paper's setup. *)

val name : t -> string

val alloc : t -> int
(** Allocate a fresh zeroed page and return its page number. Allocation is
    sequential, so consecutively allocated pages read back sequentially. *)

val alloc_run : t -> int -> int
(** [alloc_run t n] allocates [n] fresh zeroed pages guaranteed contiguous and
    returns the first page number — the primitive blob writes rely on, so a
    pager that one day reuses freed pages cannot break blob contiguity.
    @raise Invalid_argument if [n <= 0]. *)

val n_pages : t -> int
(** Number of pages ever allocated (the device footprint). *)

val size_bytes : t -> int
(** [n_pages * page_size]: the on-"disk" footprint, used for Table 1. *)

val read : ?hint:[ `Auto | `Seq ] -> t -> int -> Bytes.t
(** Physical read. Returns a fresh buffer of [page_size] bytes. [`Auto]
    (default) classifies the read sequential iff it follows the previously
    read page; [`Seq] forces sequential accounting — used by blob readers,
    whose within-blob page runs a real disk would serve via per-stream
    readahead even when several lists are merged concurrently.
    @raise Invalid_argument on an unallocated page. *)

val write : t -> int -> Bytes.t -> unit
(** Physical write of a full page.
    @raise Invalid_argument on size mismatch or unallocated page. *)
