(** A simulated block device: a growable array of fixed-size pages.

    Stands in for the files BerkeleyDB would keep on disk. Every physical
    access is recorded in a shared {!Stats.t}; reads of the page following the
    previously read page are classified sequential, everything else random.
    All accesses normally go through a {!Buffer_pool}, so a [Disk] read/write
    here corresponds to a cache miss / write-back in the real system.

    Durability: every page has a CRC32 in a sidecar array, refreshed on write
    and checked by {!read_verified} (the {!Pager} miss path and WAL recovery
    scans read through it). A device created with [~journal:true] keeps
    before-images of every page overwritten since the last {!mark_stable},
    so {!revert_to_stable} rolls it back to its last checkpoint; devices
    whose contents must survive revert (the WAL's own device) stay
    unjournaled. An optional {!Fault.t} injects deterministic crashes,
    transient read failures and bit flips.

    Concurrency: {!read} is lock-free and safe from any number of domains
    (the seq/rand classification interleaves across concurrent readers, as it
    would on a real shared spindle). {!alloc}, {!alloc_run}, {!write} and the
    checkpoint/revert operations are single-writer — the update path must not
    run concurrently with itself, though lock-free readers may overlap an
    allocation safely. *)

type t

val page_size : t -> int

val create :
  ?page_size:int -> ?fault:Fault.t -> ?breaker:Retry.breaker ->
  ?journal:bool -> name:string -> Stats.t -> t
(** [create ~name stats] makes an empty device. [page_size] defaults to
    4096 bytes, the BerkeleyDB default used in the paper's setup. [fault]
    (default none) injects failures; [breaker] (default none) guards
    {!read_verified} with a {!Retry} circuit breaker; [journal] (default
    false) enables before-image journaling for {!revert_to_stable}. *)

val name : t -> string

val stats : t -> Stats.t

val alloc : t -> int
(** Allocate a fresh zeroed page and return its page number. Allocation is
    sequential, so consecutively allocated pages read back sequentially. *)

val alloc_run : t -> int -> int
(** [alloc_run t n] allocates [n] fresh zeroed pages guaranteed contiguous and
    returns the first page number — the primitive blob writes rely on, so a
    pager that one day reuses freed pages cannot break blob contiguity.
    @raise Invalid_argument if [n <= 0]. *)

val n_pages : t -> int
(** Number of pages ever allocated (the device footprint). *)

val size_bytes : t -> int
(** [n_pages * page_size]: the on-"disk" footprint, used for Table 1. *)

val read : ?hint:[ `Auto | `Seq ] -> t -> int -> Bytes.t
(** Raw physical read — no checksum verification, no fault injection.
    Returns a fresh buffer of [page_size] bytes. [`Auto] (default)
    classifies the read sequential iff it follows the previously read page;
    [`Seq] forces sequential accounting — used by blob readers, whose
    within-blob page runs a real disk would serve via per-stream readahead
    even when several lists are merged concurrently.
    @raise Invalid_argument on an unallocated page. *)

val read_verified : ?hint:[ `Auto | `Seq ] -> ?attempts:int -> t -> int -> Bytes.t
(** Like {!read}, but the miss-path contract, delegated to {!Retry.run}:
    injected transient faults are retried with jittered backoff up to
    [attempts] (default 4) total tries (each retry billed to
    [read_retries] by [Retry], once per retry that actually runs), and the
    page is checked against its sidecar CRC32.
    @raise Storage_error.Error [(Io_transient, _)] when the attempt budget is
    exhausted, [(Corrupt, _)] on checksum mismatch (also counted in
    [checksum_failures]), [(Degraded_read_only, _)] without touching the
    device when the breaker is open. *)

val breaker : t -> Retry.breaker option
(** The device's circuit breaker, if one was attached at {!create}. *)

val write : t -> int -> Bytes.t -> unit
(** Physical write of a full page: ticks the fault clock (a crash-at-op-N
    fires {e before} anything lands, so page writes are atomic), saves a
    before-image if journaling and this is the first write to the page since
    {!mark_stable}, stores the bytes, refreshes the sidecar CRC — then
    possibly flips a stored bit if a fault says so.
    @raise Invalid_argument on size mismatch or unallocated page.
    @raise Fault.Crash when the fault clock trips. *)

val crc : t -> int -> int
(** The sidecar checksum of a page (tests). *)

val corrupt_page : t -> int -> bit:int -> unit
(** Deterministically flip bit [bit] of the stored page, leaving the sidecar
    checksum untouched — the next {!read_verified} must raise [Corrupt].
    Test hook; {!Fault.t} does the same at random. *)

val mark_stable : t -> unit
(** Declare the current on-device state a checkpoint: clear the before-image
    journal and remember the page count. Called by [Env.checkpoint] after
    all pools are flushed. *)

val revert_to_stable : t -> unit
(** Roll every page back to its state at the last {!mark_stable} and forget
    pages allocated since. Recovery only; readers must be quiescent.
    @raise Invalid_argument if the device is not journaled. *)

val journal_pages : t -> int
(** Before-images currently held (diagnostics). *)
