(** Typed storage failures — the one exception read paths are allowed to
    raise, replacing the ad-hoc [Invalid_argument]/[Not_found]/[Failure] mix.

    - [Corrupt]: bytes that fail validation — a page whose CRC32 does not
      match its sidecar checksum, an overlong or truncated varint, a B+-tree
      node with an unknown kind byte, a posting block whose header claims an
      impossible size. Retrying cannot help.
    - [Torn]: a multi-page structure cut short by a crash — a WAL record
      whose frame runs past the written tail, a blob run missing pages.
      Recovery truncates at the first torn record.
    - [Io_transient]: an injected (or, one day, real) transient read fault.
      Callers retry with bounded backoff; {!Disk.read_verified} does this
      automatically and only raises after its attempt budget is exhausted.
    - [Missing]: a lookup for an object that does not exist (unknown blob id,
      unknown device name) — the informative replacement for bare
      [Not_found].
    - [Degraded_read_only]: the device's {!Retry} circuit breaker is open —
      too many consecutive transient/torn faults — and the call was refused
      {e without} touching the device. Callers should back off and let the
      breaker's periodic probe decide when the device is healthy again. *)

type kind = Corrupt | Torn | Io_transient | Missing | Degraded_read_only

exception Error of kind * string

val kind_name : kind -> string

val error : kind -> ('a, unit, string, 'b) format4 -> 'a
(** [error kind fmt ...] raises {!Error} with a formatted message. *)

val pp : Format.formatter -> kind * string -> unit
