(* The buffer pool is split into independently-locked LRU shards keyed by
   page number, so concurrent readers on different shards never contend.
   Holding a shard's mutex across the miss path (Disk.read + insert +
   victim write-back) keeps the invariant "a page lives in exactly one
   shard's pool" trivially true; Disk reads are lock-free, so a held shard
   lock never blocks another shard's progress. *)

type entry = { mutable bytes : Bytes.t; mutable dirty : bool }

type shard = {
  mu : Mutex.t;
  pool : (int, entry) Lru.t;
  (* per-shard traffic counts, incremented under [mu]; read lock-free by
     the hit-rate gauge at scrape time (a stale read is fine there) *)
  mutable hits : int;
  mutable misses : int;
}

type t = {
  disk : Disk.t;
  stats : Stats.t;
  pool_pages : int;
  shards : shard array;
}

let default_shards = 8

let create ?(pool_pages = 1024) ?(shards = default_shards) ~stats disk =
  if shards < 1 then invalid_arg "Pager.create: shards < 1";
  let n_shards = max 1 (min shards pool_pages) in
  let cap = max 1 (pool_pages / n_shards) in
  let t =
    { disk; stats; pool_pages;
      shards =
        Array.init n_shards (fun _ ->
            { mu = Mutex.create (); pool = Lru.create ~cap; hits = 0;
              misses = 0 }) }
  in
  (* one hit-rate gauge per shard, computed from the counters at scrape;
     re-creating a pager for the same device replaces its predecessor's *)
  Array.iteri
    (fun i s ->
      Svr_obs.Metrics.gauge "svr_pager_hit_rate"
        ~help:"buffer-pool hit rate per shard since creation"
        ~labels:[ ("device", Disk.name disk); ("shard", string_of_int i) ]
        (fun () ->
          let total = s.hits + s.misses in
          if total = 0 then Float.nan
          else float_of_int s.hits /. float_of_int total))
    t.shards;
  t

let disk t = t.disk
let pool_pages t = t.pool_pages
let n_shards t = Array.length t.shards
let stats t = t.stats

let shard_of t page_no = t.shards.(page_no mod Array.length t.shards)

let write_back t page_no entry =
  if entry.dirty then begin
    Disk.write t.disk page_no entry.bytes;
    entry.dirty <- false
  end

(* caller holds [s.mu] *)
let insert t s page_no entry =
  match Lru.add s.pool page_no entry with
  | None -> ()
  | Some (victim_no, victim) -> write_back t victim_no victim

let alloc t =
  let page_no = Disk.alloc t.disk in
  let s = shard_of t page_no in
  Mutex.protect s.mu (fun () ->
      insert t s page_no
        { bytes = Bytes.make (Disk.page_size t.disk) '\000'; dirty = false });
  page_no

let alloc_run t n =
  (* the disk guarantees contiguity; freshly allocated pages are zeroed on
     device, so they need not enter the pool until they are written *)
  Disk.alloc_run t.disk n

let get ?(hint = `Auto) t page_no =
  let c = Stats.cell t.stats in
  c.Stats.logical_reads <- c.Stats.logical_reads + 1;
  let s = shard_of t page_no in
  (* defensive copies on both paths: the pool's buffer must never leak by
     reference, or a caller mutating its "own" bytes would silently corrupt
     the cached page (and, now that pages are checksummed on write-back,
     eventually trip verification on an innocent read) *)
  Mutex.protect s.mu (fun () ->
      match Lru.find s.pool page_no with
      | Some entry ->
          c.Stats.cache_hits <- c.Stats.cache_hits + 1;
          s.hits <- s.hits + 1;
          Bytes.copy entry.bytes
      | None ->
          s.misses <- s.misses + 1;
          let bytes = Disk.read_verified ~hint t.disk page_no in
          insert t s page_no { bytes; dirty = false };
          Bytes.copy bytes)

let put t page_no bytes =
  if Bytes.length bytes <> Disk.page_size t.disk then
    invalid_arg "Pager.put: page size mismatch";
  let s = shard_of t page_no in
  Mutex.protect s.mu (fun () ->
      match Lru.find s.pool page_no with
      | Some entry ->
          entry.bytes <- bytes;
          entry.dirty <- true
      | None -> insert t s page_no { bytes; dirty = true })

let flush t =
  (* gather, then write back in ascending page order: Lru.iter walks a
     hashtable, and nondeterministic write sequencing would leak into
     page_writes accounting (and any future WAL ordering) *)
  let dirty = ref [] in
  Array.iter
    (fun s ->
      Mutex.protect s.mu (fun () ->
          Lru.iter
            (fun page_no entry ->
              if entry.dirty then dirty := (page_no, entry) :: !dirty)
            s.pool))
    t.shards;
  List.iter
    (fun (page_no, entry) -> write_back t page_no entry)
    (List.sort (fun (a, _) (b, _) -> compare a b) !dirty)

let drop_cache t =
  flush t;
  Array.iter (fun s -> Mutex.protect s.mu (fun () -> Lru.clear s.pool)) t.shards

let discard t =
  (* crash semantics: dirty pages die with the pool, nothing is written back *)
  Array.iter (fun s -> Mutex.protect s.mu (fun () -> Lru.clear s.pool)) t.shards
