type entry = { mutable bytes : Bytes.t; mutable dirty : bool }

type t = {
  disk : Disk.t;
  stats : Stats.t;
  pool_pages : int;
  pool : (int, entry) Lru.t;
}

let create ?(pool_pages = 1024) ~stats disk =
  { disk; stats; pool_pages; pool = Lru.create ~cap:pool_pages }

let disk t = t.disk
let pool_pages t = t.pool_pages
let stats t = t.stats

let write_back t page_no entry =
  if entry.dirty then begin
    Disk.write t.disk page_no entry.bytes;
    entry.dirty <- false
  end

let insert t page_no entry =
  match Lru.add t.pool page_no entry with
  | None -> ()
  | Some (victim_no, victim) -> write_back t victim_no victim

let alloc t =
  let page_no = Disk.alloc t.disk in
  insert t page_no
    { bytes = Bytes.make (Disk.page_size t.disk) '\000'; dirty = false };
  page_no

let alloc_run t n =
  (* the disk guarantees contiguity; freshly allocated pages are zeroed on
     device, so they need not enter the pool until they are written *)
  Disk.alloc_run t.disk n

let get ?(hint = `Auto) t page_no =
  t.stats.Stats.logical_reads <- t.stats.Stats.logical_reads + 1;
  match Lru.find t.pool page_no with
  | Some entry ->
      t.stats.Stats.cache_hits <- t.stats.Stats.cache_hits + 1;
      entry.bytes
  | None ->
      let bytes = Disk.read ~hint t.disk page_no in
      insert t page_no { bytes; dirty = false };
      bytes

let put t page_no bytes =
  if Bytes.length bytes <> Disk.page_size t.disk then
    invalid_arg "Pager.put: page size mismatch";
  match Lru.find t.pool page_no with
  | Some entry ->
      entry.bytes <- bytes;
      entry.dirty <- true
  | None -> insert t page_no { bytes; dirty = true }

let flush t = Lru.iter (fun page_no entry -> write_back t page_no entry) t.pool

let drop_cache t =
  flush t;
  Lru.clear t.pool
