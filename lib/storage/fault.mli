(** Deterministic fault injection for the simulated storage stack.

    One [Fault.t] is shared by every {!Disk} of an environment (pass it to
    {!Env.create}); the injected failure sequence is a pure function of the
    seed and the workload, so every crash test replays exactly. Knobs:

    - {b crash-at-op-N}: {!tick_write} raises {!Crash} when the N-th physical
      page write is attempted — {e before} the write lands, so page writes
      stay atomic and multi-page operations tear at page boundaries. The trap
      is one-shot; re-arm with {!arm_crash} for the next round.
    - {b transient read errors}: {!should_fail_read} fails reads at
      [read_fail_rate], but never more than [max_consecutive_read_fails]
      times in a row, so {!Disk.read_verified}'s bounded retry always
      terminates.
    - {b bit flips}: {!maybe_flip} flips one random bit of a stored page at
      [bitflip_rate]; the sidecar checksum then catches it on the next
      verified read.
    - {b latency}: {!read_stall} / {!write_stall} occasionally return a
      nonzero stall (slow reads, stalled WAL appends). {!Disk} bills stalls
      to {!Stats.counters.stall_ms}, i.e. into the {e simulated} clock, so
      deadline and circuit-breaker paths are testable deterministically —
      no wall-clock sleeps, no flaky timing. *)

exception Crash of string
(** The simulated machine died. Nothing below the raise point ran; volatile
    state (buffer pools, unflushed WAL tail) is garbage until
    {!Env.recover}. *)

type t

val create :
  ?crash_at_write:int ->
  ?read_fail_rate:float ->
  ?bitflip_rate:float ->
  ?max_consecutive_read_fails:int ->
  ?read_stall_rate:float ->
  ?read_stall_ms:int ->
  ?write_stall_rate:float ->
  ?write_stall_ms:int ->
  seed:int ->
  unit ->
  t
(** All injection off by default ([crash_at_write = 0] means disarmed). *)

val arm_crash : t -> after:int -> unit
(** Crash at the [after]-th physical write from now (one-shot).
    @raise Invalid_argument if [after <= 0]. *)

val disarm : t -> unit

val writes_seen : t -> int
(** Physical writes observed so far (across all devices sharing this fault). *)

val reads_seen : t -> int

val tick_write : t -> device:string -> unit
(** Called by {!Disk.write} before applying a write. @raise Crash when armed
    and the counter trips. *)

val should_fail_read : t -> bool
(** Called by {!Disk.read_verified} per attempt; [true] = inject a transient
    failure for this attempt. *)

val maybe_flip : t -> Bytes.t -> bool
(** Possibly flip one random bit in place; [true] if a bit was flipped. *)

val set_read_fail_rate : t -> float -> unit
(** Change the transient-read failure rate mid-run — circuit-breaker tests
    heal the device this way before sending the probe. *)

val set_read_stall : t -> rate:float -> ms:int -> unit
(** Stall a fraction [rate] of reads by [ms] simulated milliseconds. *)

val set_write_stall : t -> rate:float -> ms:int -> unit
(** Same for writes — a stalled WAL append is a stalled sequential write on
    the wal device. *)

val read_stall : t -> int
(** Stall (simulated ms, usually 0) for the read about to be served. *)

val write_stall : t -> int
(** Stall for the write about to be applied. *)
