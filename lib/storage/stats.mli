(** I/O accounting for the simulated storage layer, safe under domains.

    The paper's measurements are disk-dominated (cold-cache queries against
    long inverted lists far larger than the 100 MB BerkeleyDB cache). We count
    every physical page access, classified as sequential or random, and derive
    a simulated elapsed time from a configurable cost model. Benchmarks report
    both wall time and this simulated time; the latter is what reproduces the
    paper's shapes on arbitrary hardware.

    Counters live in {e per-domain cells}: {!cell} hands the calling domain
    its own mutable record, so the hot path increments plain fields that no
    other domain touches — zero contention, no atomics. {!snapshot} sums the
    cells; {!per_domain} exposes them individually (the parallel-query bench
    derives per-domain cache-hit rates and a modeled parallel elapsed time
    from them). Aggregation is exact at quiescent points; while other domains
    are actively counting it may observe in-flight values. *)

type counters = {
  mutable logical_reads : int;  (** page reads requested (incl. cache hits) *)
  mutable cache_hits : int;  (** reads served from a buffer pool *)
  mutable seq_reads : int;  (** physical reads contiguous with the previous *)
  mutable rand_reads : int;  (** physical reads requiring a seek *)
  mutable page_writes : int;  (** physical page writes (pool write-back) *)
  mutable seq_writes : int;
      (** the subset of [page_writes] contiguous with the device's previous
          write — WAL appends, bulk-load runs *)
  mutable blocks_decoded : int;
      (** posting blocks fully decoded by a long-list cursor *)
  mutable blocks_skipped : int;
      (** posting blocks (or whole chunk groups) skipped via their headers
          without decoding — the payoff of the skip data *)
  mutable upper_seeks : int;
      (** in-block seeks answered by searching an Elias-Fano upper-bits
          structure (the [pef] codec's native [seek_geq]) *)
  mutable codec_bytes_written : int;
      (** exact encoded posting-list bytes handed to {!Blob_store.put} —
          headers and bodies alike, no estimates — so the cost model bills
          what the codec actually produced *)
  mutable wal_appends : int;  (** logical records appended to the WAL *)
  mutable wal_bytes : int;  (** framed bytes those records occupied *)
  mutable checksum_failures : int;
      (** verified reads whose page failed its sidecar CRC32 *)
  mutable read_retries : int;
      (** transient read faults absorbed by retry-with-backoff *)
  mutable recovery_replays : int;
      (** WAL records replayed by {!Env.recover} *)
  mutable stall_ms : int;
      (** injected device-stall milliseconds ({!Fault} latency faults) —
          billed straight into {!simulated_ms}, so simulated deadlines
          observe slow devices deterministically *)
}

type t
(** A set of per-domain counter cells sharing one registry. *)

type cost_model = {
  seq_read_ms : float;  (** cost of a sequential 4 KiB page read *)
  rand_read_ms : float;  (** cost of a random page read (seek + transfer) *)
  write_ms : float;  (** cost of a random physical page write *)
  seq_write_ms : float;  (** cost of a write contiguous with the previous *)
}

val default_cost : cost_model
(** Commodity-disk model matching the paper's 2004-era hardware:
    8 ms random read/write, 0.05 ms sequential read/write (appends ride
    the same head position — the economics the WAL exists to exploit). *)

val create : unit -> t

val cell : t -> counters
(** The calling domain's private cell — created and registered on first use.
    Increment its fields directly; never share the record across domains. *)

val zero : unit -> counters
(** A fresh all-zero record, for accumulators. *)

val reset : t -> unit
(** Zero every registered cell. Call only at quiescent points. *)

val snapshot : t -> counters
(** Field-wise sum of every domain's cell, as an independent record. *)

val per_domain : t -> (int * counters) list
(** Copies of each registered cell with its domain id, in registration
    order. Cells of terminated domains persist (their counts still matter). *)

val diff : after:counters -> before:counters -> counters
(** Field-wise [after - before]. *)

val simulated_ms : ?cost:cost_model -> counters -> float
(** Simulated elapsed time implied by the physical I/O counts. *)

val pp : Format.formatter -> counters -> unit
