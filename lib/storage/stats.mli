(** I/O accounting for the simulated storage layer.

    The paper's measurements are disk-dominated (cold-cache queries against
    long inverted lists far larger than the 100 MB BerkeleyDB cache). We count
    every physical page access, classified as sequential or random, and derive
    a simulated elapsed time from a configurable cost model. Benchmarks report
    both wall time and this simulated time; the latter is what reproduces the
    paper's shapes on arbitrary hardware. *)

type t = {
  mutable logical_reads : int;  (** page reads requested (incl. cache hits) *)
  mutable cache_hits : int;  (** reads served from a buffer pool *)
  mutable seq_reads : int;  (** physical reads contiguous with the previous *)
  mutable rand_reads : int;  (** physical reads requiring a seek *)
  mutable page_writes : int;  (** physical page writes (pool write-back) *)
  mutable blocks_decoded : int;
      (** posting blocks fully decoded by a long-list cursor *)
  mutable blocks_skipped : int;
      (** posting blocks (or whole chunk groups) skipped via their headers
          without decoding — the payoff of the skip data *)
}

type cost_model = {
  seq_read_ms : float;  (** cost of a sequential 4 KiB page read *)
  rand_read_ms : float;  (** cost of a random page read (seek + transfer) *)
  write_ms : float;  (** cost of a physical page write *)
}

val default_cost : cost_model
(** Commodity-disk model matching the paper's 2004-era hardware:
    8 ms random read, 0.05 ms sequential read, 8 ms write. *)

val create : unit -> t

val reset : t -> unit

val snapshot : t -> t
(** An independent copy, for before/after diffing. *)

val diff : after:t -> before:t -> t
(** Field-wise [after - before]. *)

val simulated_ms : ?cost:cost_model -> t -> float
(** Simulated elapsed time implied by the physical I/O counts. *)

val pp : Format.formatter -> t -> unit
