(** Retry-with-backoff policy and per-device circuit breaker.

    PR 3 buried a bounded retry loop inside {!Disk.read_verified}; this
    module lifts it out so the serving layer owns fault-absorption policy:

    - {b bounded retries} of [Io_transient] attempts with decorrelated-jitter
      backoff (next spin count drawn uniformly from [base, 3*prev], capped);
    - {b billing}: [Stats.read_retries] is bumped here, once per retry that
      actually runs — never as a side effect of the fault decision;
    - {b circuit breaker}: after [threshold] consecutive [Io_transient]/
      [Torn] faults the per-device breaker opens and subsequent calls fail
      fast with [Degraded_read_only] without touching the device; every
      [probe_every]-th rejected call is let through as a probe, and a
      successful probe closes the breaker. The open/probe/close sequence is
      count-based (not clock-based), so it replays deterministically under
      seeded faults. *)

type policy = { attempts : int; base_spins : int; cap_spins : int }

val default_policy : policy
(** 4 attempts, first backoff 8 spins, capped at 1024. *)

val policy : ?attempts:int -> ?base_spins:int -> ?cap_spins:int -> unit -> policy
(** @raise Invalid_argument if [attempts < 1]. *)

val jitter_ms : base_ms:float -> cap_ms:float -> prev_ms:float -> float
(** The decorrelated-jitter backoff curve over milliseconds, for callers
    that sleep instead of spinning (the network client pacing itself off a
    [retry_after_ms] hint): a draw uniform in [[base_ms, max base_ms
    (3 * prev_ms)]], capped at [cap_ms]. Feed the previous draw back in as
    [prev_ms]. @raise Invalid_argument unless [0 <= base_ms <= cap_ms]. *)

type breaker

val breaker : ?threshold:int -> ?probe_every:int -> string -> breaker
(** A breaker for the named device. [threshold] consecutive faults open it;
    one in every [probe_every] subsequent calls probes the device. *)

val breaker_open : breaker -> bool

val breaker_opens : breaker -> int
(** Closed→open transitions so far. *)

val breaker_rejections : breaker -> int
(** Calls failed fast since the breaker last opened. *)

val record_success : breaker -> unit
(** Reset the consecutive-fault count; close the breaker if open. Exposed
    for callers that bypass {!run} but still share the device. *)

val record_failure : breaker -> unit
(** Count one transient/torn fault; may open the breaker. *)

val run :
  ?policy:policy ->
  ?breaker:breaker ->
  stats:Stats.t ->
  what:string ->
  (unit -> 'a) ->
  'a
(** [run ~stats ~what f] calls [f] until it returns, retrying
    [Io_transient] failures up to [policy.attempts] total attempts with
    jittered backoff. [Torn] faults are never retried (re-raised after
    feeding the breaker); other storage errors pass through untouched.

    @raise Storage_error.Error [(Degraded_read_only, _)] immediately —
    without calling [f] — when the breaker is open and this call is not a
    probe.
    @raise Storage_error.Error [(Io_transient, _)] when the attempt budget
    is exhausted. *)
