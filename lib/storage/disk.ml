(* Readers are lock-free: [pages] and [n_pages] are published with release
   stores and read with acquire loads, so a read that observes a page number
   below [n_pages] also observes the fully-initialized page array behind it.
   Allocation and writes are single-writer operations (the update path);
   concurrent read-only queries never call them. *)

type t = {
  name : string;
  page_size : int;
  stats : Stats.t;
  pages : Bytes.t array Atomic.t;
  n_pages : int Atomic.t;
  last_read : int Atomic.t;
}

let page_size t = t.page_size
let name t = t.name

let create ?(page_size = 4096) ~name stats =
  { name; page_size; stats;
    pages = Atomic.make (Array.make 64 Bytes.empty);
    n_pages = Atomic.make 0; last_read = Atomic.make (-2) }

let alloc t =
  let n = Atomic.get t.n_pages in
  let arr = Atomic.get t.pages in
  let arr =
    if n = Array.length arr then begin
      let bigger = Array.make (2 * n) Bytes.empty in
      Array.blit arr 0 bigger 0 n;
      (* publish the grown array before the count that makes it reachable *)
      Atomic.set t.pages bigger;
      bigger
    end
    else arr
  in
  let page_no = n in
  arr.(page_no) <- Bytes.make t.page_size '\000';
  Atomic.set t.n_pages (page_no + 1);
  page_no

let alloc_run t n =
  if n <= 0 then invalid_arg "Disk.alloc_run: n must be positive";
  let first = alloc t in
  for _ = 2 to n do
    ignore (alloc t)
  done;
  first

let n_pages t = Atomic.get t.n_pages
let size_bytes t = n_pages t * t.page_size

let check t page_no op =
  if page_no < 0 || page_no >= Atomic.get t.n_pages then
    invalid_arg
      (Printf.sprintf "Disk.%s: page %d out of range on %s" op page_no t.name)

let read ?(hint = `Auto) t page_no =
  check t page_no "read";
  let sequential =
    match hint with
    | `Seq -> true
    | `Auto -> page_no = Atomic.exchange t.last_read page_no + 1
  in
  (match hint with `Seq -> Atomic.set t.last_read page_no | `Auto -> ());
  let c = Stats.cell t.stats in
  if sequential then c.Stats.seq_reads <- c.Stats.seq_reads + 1
  else c.Stats.rand_reads <- c.Stats.rand_reads + 1;
  Bytes.copy (Atomic.get t.pages).(page_no)

let write t page_no bytes =
  check t page_no "write";
  if Bytes.length bytes <> t.page_size then
    invalid_arg "Disk.write: page size mismatch";
  let c = Stats.cell t.stats in
  c.Stats.page_writes <- c.Stats.page_writes + 1;
  (Atomic.get t.pages).(page_no) <- Bytes.copy bytes
