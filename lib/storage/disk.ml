(* Readers are lock-free: [pages] and [n_pages] are published with release
   stores and read with acquire loads, so a read that observes a page number
   below [n_pages] also observes the fully-initialized page array behind it.
   Allocation and writes are single-writer operations (the update path);
   concurrent read-only queries never call them.

   Durability additions (all single-writer, like allocation):
   - a CRC32 sidecar, one checksum per page, updated on every write and
     checked by [read_verified] — the stand-in for the per-page checksum a
     real pager keeps in the page header. Our pages have no spare header
     room (B+-tree nodes fill all [page_size] bytes), hence the sidecar.
   - a before-image journal: the first write to a page since the last
     [mark_stable] saves the old (bytes, crc) pair, so [revert_to_stable]
     can roll the device back to its last checkpoint — the rollback-journal
     half of recovery, with the logical WAL replayed on top. The journal
     also remembers the stable page count, so pages allocated mid-epoch
     vanish again on revert.
   - optional fault hooks ([Fault.t]): write ticks (crash-at-op-N fires
     before the write lands, keeping page writes atomic), post-write bit
     flips on the stored copy (the sidecar keeps the honest checksum, so
     verification catches the flip), and transient read failures absorbed by
     [read_verified]'s bounded retry. *)

type t = {
  name : string;
  page_size : int;
  stats : Stats.t;
  pages : Bytes.t array Atomic.t;
  n_pages : int Atomic.t;
  last_read : int Atomic.t;
  last_write : int Atomic.t;
  crcs : int array Atomic.t; (* sidecar: crcs.(i) = CRC32 of pages.(i) *)
  zero_crc : int; (* checksum of an all-zero page, set at alloc *)
  fault : Fault.t option;
  breaker : Retry.breaker option;
  journal : (int, Bytes.t * int) Hashtbl.t; (* before images since mark_stable *)
  journaled : bool;
  mutable stable_n_pages : int;
}

let page_size t = t.page_size
let name t = t.name
let stats t = t.stats
let breaker t = t.breaker

let create ?(page_size = 4096) ?fault ?breaker ?(journal = false) ~name stats =
  { name; page_size; stats;
    pages = Atomic.make (Array.make 64 Bytes.empty);
    n_pages = Atomic.make 0; last_read = Atomic.make (-2);
    last_write = Atomic.make (-2);
    crcs = Atomic.make (Array.make 64 0);
    zero_crc = Crc32.bytes (Bytes.make page_size '\000');
    fault; breaker; journal = Hashtbl.create 32; journaled = journal;
    stable_n_pages = 0 }

let alloc t =
  let n = Atomic.get t.n_pages in
  let arr = Atomic.get t.pages in
  let arr =
    if n = Array.length arr then begin
      let bigger = Array.make (2 * n) Bytes.empty in
      Array.blit arr 0 bigger 0 n;
      let crc_bigger = Array.make (2 * n) 0 in
      Array.blit (Atomic.get t.crcs) 0 crc_bigger 0 n;
      Atomic.set t.crcs crc_bigger;
      (* publish the grown array before the count that makes it reachable *)
      Atomic.set t.pages bigger;
      bigger
    end
    else arr
  in
  let page_no = n in
  arr.(page_no) <- Bytes.make t.page_size '\000';
  (Atomic.get t.crcs).(page_no) <- t.zero_crc;
  Atomic.set t.n_pages (page_no + 1);
  page_no

let alloc_run t n =
  if n <= 0 then invalid_arg "Disk.alloc_run: n must be positive";
  let first = alloc t in
  for _ = 2 to n do
    ignore (alloc t)
  done;
  first

let n_pages t = Atomic.get t.n_pages
let size_bytes t = n_pages t * t.page_size

let check t page_no op =
  if page_no < 0 || page_no >= Atomic.get t.n_pages then
    invalid_arg
      (Printf.sprintf "Disk.%s: page %d out of range on %s" op page_no t.name)

let read ?(hint = `Auto) t page_no =
  check t page_no "read";
  let sequential =
    match hint with
    | `Seq -> true
    | `Auto -> page_no = Atomic.exchange t.last_read page_no + 1
  in
  (match hint with `Seq -> Atomic.set t.last_read page_no | `Auto -> ());
  let c = Stats.cell t.stats in
  if sequential then c.Stats.seq_reads <- c.Stats.seq_reads + 1
  else c.Stats.rand_reads <- c.Stats.rand_reads + 1;
  (match t.fault with
  | Some f ->
      let stall = Fault.read_stall f in
      if stall > 0 then c.Stats.stall_ms <- c.Stats.stall_ms + stall
  | None -> ());
  Bytes.copy (Atomic.get t.pages).(page_no)

let write t page_no bytes =
  check t page_no "write";
  if Bytes.length bytes <> t.page_size then
    invalid_arg "Disk.write: page size mismatch";
  (match t.fault with
  | Some f -> Fault.tick_write f ~device:t.name
  | None -> ());
  if
    t.journaled && page_no < t.stable_n_pages
    && not (Hashtbl.mem t.journal page_no)
  then
    Hashtbl.add t.journal page_no
      ((Atomic.get t.pages).(page_no), (Atomic.get t.crcs).(page_no));
  let c = Stats.cell t.stats in
  c.Stats.page_writes <- c.Stats.page_writes + 1;
  (match t.fault with
  | Some f ->
      (* a stalled WAL append is a stalled sequential write on the wal
         device; billed to the simulated clock like any other device time *)
      let stall = Fault.write_stall f in
      if stall > 0 then c.Stats.stall_ms <- c.Stats.stall_ms + stall
  | None -> ());
  (* same-or-next position: appends and tail-page rewrites ride the head,
     so the WAL's group-commit flushes bill at sequential cost *)
  let last = Atomic.exchange t.last_write page_no in
  if page_no = last || page_no = last + 1 then
    c.Stats.seq_writes <- c.Stats.seq_writes + 1;
  let stored = Bytes.copy bytes in
  (Atomic.get t.crcs).(page_no) <- Crc32.bytes stored;
  (* a flip after the checksum was taken models media corruption: the
     sidecar keeps the honest value and the next verified read trips *)
  (match t.fault with Some f -> ignore (Fault.maybe_flip f stored) | None -> ());
  (Atomic.get t.pages).(page_no) <- stored

let crc t page_no =
  check t page_no "crc";
  (Atomic.get t.crcs).(page_no)

let corrupt_page t page_no ~bit =
  check t page_no "corrupt_page";
  let stored = Bytes.copy (Atomic.get t.pages).(page_no) in
  let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
  if byte >= t.page_size then invalid_arg "Disk.corrupt_page: bit out of range";
  Bytes.set stored byte (Char.chr (Char.code (Bytes.get stored byte) lxor mask));
  (Atomic.get t.pages).(page_no) <- stored

(* -- verified reads ------------------------------------------------------- *)

(* one attempt: fault decision, then the physical read + CRC check. The
   retry loop, its backoff, the retry billing and the circuit breaker all
   live in [Retry] now *)
let read_attempt ~hint t page_no () =
  (match t.fault with
  | Some f when Fault.should_fail_read f ->
      Storage_error.error Io_transient
        "Disk.read_verified: transient fault on page %d of %s" page_no t.name
  | _ -> ());
  let bytes = read ~hint t page_no in
  let expect = (Atomic.get t.crcs).(page_no) in
  if Crc32.bytes bytes <> expect then begin
    let c = Stats.cell t.stats in
    c.Stats.checksum_failures <- c.Stats.checksum_failures + 1;
    if Svr_obs.Trace.hot () then
      Svr_obs.Trace.event "checksum-failure"
        ~attrs:[ ("device", t.name); ("page", string_of_int page_no) ];
    Storage_error.error Corrupt
      "Disk.read_verified: checksum mismatch on page %d of %s" page_no t.name
  end;
  bytes

let read_verified ?(hint = `Auto) ?(attempts = Retry.default_policy.attempts)
    t page_no =
  let policy = { Retry.default_policy with attempts } in
  Retry.run ~policy ?breaker:t.breaker ~stats:t.stats
    ~what:(Printf.sprintf "%s/page-%d" t.name page_no)
    (read_attempt ~hint t page_no)

(* -- checkpoint / revert -------------------------------------------------- *)

let mark_stable t =
  Hashtbl.reset t.journal;
  t.stable_n_pages <- Atomic.get t.n_pages

let revert_to_stable t =
  if not t.journaled then
    invalid_arg (Printf.sprintf "Disk.revert_to_stable: %s is not journaled" t.name);
  let pages = Atomic.get t.pages and crcs = Atomic.get t.crcs in
  Hashtbl.iter
    (fun page_no (bytes, crc) ->
      pages.(page_no) <- bytes;
      crcs.(page_no) <- crc)
    t.journal;
  Hashtbl.reset t.journal;
  (* pages allocated since the stable point evaporate; the slots stay in the
     array and are re-zeroed by the next alloc *)
  Atomic.set t.n_pages t.stable_n_pages;
  Atomic.set t.last_read (-2)

let journal_pages t = Hashtbl.length t.journal
