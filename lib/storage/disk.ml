type t = {
  name : string;
  page_size : int;
  stats : Stats.t;
  mutable pages : Bytes.t array;
  mutable n_pages : int;
  mutable last_read : int;
}

let page_size t = t.page_size
let name t = t.name

let create ?(page_size = 4096) ~name stats =
  { name; page_size; stats; pages = Array.make 64 Bytes.empty; n_pages = 0;
    last_read = -2 }

let alloc t =
  if t.n_pages = Array.length t.pages then begin
    let bigger = Array.make (2 * t.n_pages) Bytes.empty in
    Array.blit t.pages 0 bigger 0 t.n_pages;
    t.pages <- bigger
  end;
  let page_no = t.n_pages in
  t.pages.(page_no) <- Bytes.make t.page_size '\000';
  t.n_pages <- t.n_pages + 1;
  page_no

let alloc_run t n =
  if n <= 0 then invalid_arg "Disk.alloc_run: n must be positive";
  let first = alloc t in
  for _ = 2 to n do
    ignore (alloc t)
  done;
  first

let n_pages t = t.n_pages
let size_bytes t = t.n_pages * t.page_size

let check t page_no op =
  if page_no < 0 || page_no >= t.n_pages then
    invalid_arg
      (Printf.sprintf "Disk.%s: page %d out of range on %s" op page_no t.name)

let read ?(hint = `Auto) t page_no =
  check t page_no "read";
  let sequential =
    match hint with `Seq -> true | `Auto -> page_no = t.last_read + 1
  in
  if sequential then t.stats.Stats.seq_reads <- t.stats.Stats.seq_reads + 1
  else t.stats.Stats.rand_reads <- t.stats.Stats.rand_reads + 1;
  t.last_read <- page_no;
  Bytes.copy t.pages.(page_no)

let write t page_no bytes =
  check t page_no "write";
  if Bytes.length bytes <> t.page_size then
    invalid_arg "Disk.write: page size mismatch";
  t.stats.Stats.page_writes <- t.stats.Stats.page_writes + 1;
  t.pages.(page_no) <- Bytes.copy bytes
