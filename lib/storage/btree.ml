(* Node layout (page_size bytes):
     byte 0        : kind (1 = leaf, 2 = internal)
     bytes 1-2     : nkeys, big-endian u16
     bytes 3-6     : leaf: next-leaf page (0xFFFFFFFF = none)
                     internal: leftmost child page
     byte 7 ..     : leaf entries     [klen u16][vlen u16][key][value]
                     internal entries [klen u16][child u32][key]
   Internal node semantics: keys k0..k(m-1) and children c0..cm, where
   subtree ci holds keys in [k(i-1), ki) with k(-1) = -inf, km = +inf, i.e.
   keys >= a separator live to its right. *)

let none_page = 0xFFFFFFFF

type leaf = {
  mutable lkeys : string array;
  mutable lvals : string array;
  mutable next : int;
}

type internal = {
  mutable ikeys : string array;
  mutable children : int array; (* length = Array.length ikeys + 1 *)
}

type node = Leaf of leaf | Internal of internal

type t = {
  pager : Pager.t;
  page_size : int;
  mutable root : int;
  mutable count : int;
  (* the (root, count) pair at the last checkpoint: the only state of a tree
     that lives outside its pages, so recovery restores it alongside the
     device-level revert *)
  mutable stable_root : int;
  mutable stable_count : int;
}

(* -- raw byte helpers ----------------------------------------------------- *)

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set_u16 b off n =
  Bytes.set b off (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (n land 0xff))

let get_u32b b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let set_u32b b off n =
  Bytes.set b off (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (n land 0xff))

(* -- node (de)serialisation ----------------------------------------------- *)

let decode page_bytes =
  let nkeys = get_u16 page_bytes 1 in
  match Char.code (Bytes.get page_bytes 0) with
  | 1 ->
      let next = get_u32b page_bytes 3 in
      let lkeys = Array.make nkeys "" and lvals = Array.make nkeys "" in
      let off = ref 7 in
      for i = 0 to nkeys - 1 do
        let klen = get_u16 page_bytes !off in
        let vlen = get_u16 page_bytes (!off + 2) in
        lkeys.(i) <- Bytes.sub_string page_bytes (!off + 4) klen;
        lvals.(i) <- Bytes.sub_string page_bytes (!off + 4 + klen) vlen;
        off := !off + 4 + klen + vlen
      done;
      Leaf { lkeys; lvals; next }
  | 2 ->
      let ikeys = Array.make nkeys "" in
      let children = Array.make (nkeys + 1) 0 in
      children.(0) <- get_u32b page_bytes 3;
      let off = ref 7 in
      for i = 0 to nkeys - 1 do
        let klen = get_u16 page_bytes !off in
        children.(i + 1) <- get_u32b page_bytes (!off + 2);
        ikeys.(i) <- Bytes.sub_string page_bytes (!off + 6) klen;
        off := !off + 6 + klen
      done;
      Internal { ikeys; children }
  | k -> Storage_error.error Corrupt "Btree.decode: bad node kind %d" k

let leaf_bytes l =
  Array.fold_left (fun acc k -> acc + 4 + String.length k) 7 l.lkeys
  + Array.fold_left (fun acc v -> acc + String.length v) 0 l.lvals

let internal_bytes n =
  Array.fold_left (fun acc k -> acc + 6 + String.length k) 7 n.ikeys

let encode page_size node =
  let b = Bytes.make page_size '\000' in
  (match node with
  | Leaf l ->
      Bytes.set b 0 '\001';
      set_u16 b 1 (Array.length l.lkeys);
      set_u32b b 3 l.next;
      let off = ref 7 in
      Array.iteri
        (fun i k ->
          let v = l.lvals.(i) in
          set_u16 b !off (String.length k);
          set_u16 b (!off + 2) (String.length v);
          Bytes.blit_string k 0 b (!off + 4) (String.length k);
          Bytes.blit_string v 0 b (!off + 4 + String.length k)
            (String.length v);
          off := !off + 4 + String.length k + String.length v)
        l.lkeys
  | Internal n ->
      Bytes.set b 0 '\002';
      set_u16 b 1 (Array.length n.ikeys);
      set_u32b b 3 n.children.(0);
      let off = ref 7 in
      Array.iteri
        (fun i k ->
          set_u16 b !off (String.length k);
          set_u32b b (!off + 2) n.children.(i + 1);
          Bytes.blit_string k 0 b (!off + 6) (String.length k);
          off := !off + 6 + String.length k)
        n.ikeys);
  b

let load t page_no = decode (Pager.get t.pager page_no)
let store t page_no node = Pager.put t.pager page_no (encode t.page_size node)

(* -- searching helpers ---------------------------------------------------- *)

(* Smallest index i with keys.(i) >= key (n if none). *)
let lower_bound keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Smallest index i with keys.(i) > key (n if none). *)
let upper_bound keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i x =
  let n = Array.length a in
  let out = Array.make (n + 1) x in
  Array.blit a 0 out 0 i;
  Array.blit a i out (i + 1) (n - i);
  out

let array_remove a i =
  let n = Array.length a in
  let out = Array.make (n - 1) a.(0) in
  Array.blit a 0 out 0 i;
  Array.blit a (i + 1) out i (n - 1 - i);
  out

(* -- construction --------------------------------------------------------- *)

let create pager =
  let page_size = Disk.page_size (Pager.disk pager) in
  let root = Pager.alloc pager in
  let t =
    { pager; page_size; root; count = 0; stable_root = root; stable_count = 0 }
  in
  store t root (Leaf { lkeys = [||]; lvals = [||]; next = none_page });
  t

let mark_stable t =
  t.stable_root <- t.root;
  t.stable_count <- t.count

let revert_to_stable t =
  t.root <- t.stable_root;
  t.count <- t.stable_count

let count t = t.count

(* -- find ----------------------------------------------------------------- *)

let rec find_in t page_no key =
  match load t page_no with
  | Leaf l ->
      let i = lower_bound l.lkeys key in
      if i < Array.length l.lkeys && String.equal l.lkeys.(i) key then
        Some l.lvals.(i)
      else None
  | Internal n -> find_in t n.children.(upper_bound n.ikeys key) key

let find t key = find_in t t.root key
let mem t key = Option.is_some (find t key)

(* -- insert --------------------------------------------------------------- *)

(* Split index by accumulated byte size: both halves non-empty and the left
   half just reaches half of the payload. *)
let split_point sizes total =
  let n = Array.length sizes in
  let acc = ref 0 and i = ref 0 in
  while !i < n - 1 && 2 * !acc < total do
    acc := !acc + sizes.(!i);
    incr i
  done;
  max 1 (min (n - 1) !i)

let split_leaf t l =
  let n = Array.length l.lkeys in
  let sizes =
    Array.init n (fun i ->
        4 + String.length l.lkeys.(i) + String.length l.lvals.(i))
  in
  let mid = split_point sizes (Array.fold_left ( + ) 0 sizes) in
  let right_page = Pager.alloc t.pager in
  let right =
    { lkeys = Array.sub l.lkeys mid (n - mid);
      lvals = Array.sub l.lvals mid (n - mid);
      next = l.next }
  in
  l.lkeys <- Array.sub l.lkeys 0 mid;
  l.lvals <- Array.sub l.lvals 0 mid;
  l.next <- right_page;
  store t right_page (Leaf right);
  (right.lkeys.(0), right_page)

let split_internal t n =
  let nk = Array.length n.ikeys in
  assert (nk >= 3);
  let mid = nk / 2 in
  let sep = n.ikeys.(mid) in
  let right_page = Pager.alloc t.pager in
  let right =
    { ikeys = Array.sub n.ikeys (mid + 1) (nk - mid - 1);
      children = Array.sub n.children (mid + 1) (nk - mid) }
  in
  n.ikeys <- Array.sub n.ikeys 0 mid;
  n.children <- Array.sub n.children 0 (mid + 1);
  store t right_page (Internal right);
  (sep, right_page)

let rec insert_in t page_no key value =
  match load t page_no with
  | Leaf l ->
      let i = lower_bound l.lkeys key in
      if i < Array.length l.lkeys && String.equal l.lkeys.(i) key then
        l.lvals.(i) <- value
      else begin
        l.lkeys <- array_insert l.lkeys i key;
        l.lvals <- array_insert l.lvals i value;
        t.count <- t.count + 1
      end;
      if leaf_bytes l <= t.page_size then begin
        store t page_no (Leaf l);
        None
      end
      else begin
        let sep, right_page = split_leaf t l in
        store t page_no (Leaf l);
        Some (sep, right_page)
      end
  | Internal n -> (
      let i = upper_bound n.ikeys key in
      match insert_in t n.children.(i) key value with
      | None -> None
      | Some (sep, right_page) ->
          n.ikeys <- array_insert n.ikeys i sep;
          n.children <- array_insert n.children (i + 1) right_page;
          if internal_bytes n <= t.page_size then begin
            store t page_no (Internal n);
            None
          end
          else begin
            let sep_up, right = split_internal t n in
            store t page_no (Internal n);
            Some (sep_up, right)
          end)

let insert t key value =
  if 4 + String.length key + String.length value > t.page_size - 7 then
    invalid_arg "Btree.insert: entry larger than a page";
  match insert_in t t.root key value with
  | None -> ()
  | Some (sep, right_page) ->
      let new_root = Pager.alloc t.pager in
      store t new_root
        (Internal { ikeys = [| sep |]; children = [| t.root; right_page |] });
      t.root <- new_root

(* -- delete (lazy: no rebalancing) ---------------------------------------- *)

let rec delete_in t page_no key =
  match load t page_no with
  | Leaf l ->
      let i = lower_bound l.lkeys key in
      if i < Array.length l.lkeys && String.equal l.lkeys.(i) key then begin
        l.lkeys <- array_remove l.lkeys i;
        l.lvals <- array_remove l.lvals i;
        t.count <- t.count - 1;
        store t page_no (Leaf l);
        true
      end
      else false
  | Internal n -> delete_in t n.children.(upper_bound n.ikeys key) key

let delete t key = delete_in t t.root key

let clear t =
  let root = Pager.alloc t.pager in
  store t root (Leaf { lkeys = [||]; lvals = [||]; next = none_page });
  t.root <- root;
  t.count <- 0

(* -- cursors and iteration ------------------------------------------------ *)

type cursor = {
  tree : t;
  mutable leaf : leaf;
  mutable idx : int;
}

let rec leaf_for t page_no key =
  match load t page_no with
  | Leaf l -> l
  | Internal n -> leaf_for t n.children.(upper_bound n.ikeys key) key

let seek t key =
  let l = leaf_for t t.root key in
  { tree = t; leaf = l; idx = lower_bound l.lkeys key }

let rec cursor_next c =
  if c.idx < Array.length c.leaf.lkeys then begin
    let entry = (c.leaf.lkeys.(c.idx), c.leaf.lvals.(c.idx)) in
    c.idx <- c.idx + 1;
    Some entry
  end
  else if c.leaf.next = none_page then None
  else begin
    (match load c.tree c.leaf.next with
    | Leaf l -> c.leaf <- l
    | Internal _ ->
        Storage_error.error Corrupt "Btree: leaf chain points at internal node");
    c.idx <- 0;
    cursor_next c
  end

let iter_from t key f =
  let c = seek t key in
  let rec go () =
    match cursor_next c with
    | None -> ()
    | Some (k, v) -> if f k v then go ()
  in
  go ()

let iter_all t f = iter_from t "" f

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let iter_prefix t prefix f =
  iter_from t prefix (fun k v -> has_prefix ~prefix k && f k v)

let min_binding t =
  let result = ref None in
  iter_all t (fun k v ->
      result := Some (k, v);
      false);
  !result

let rec height_from t page_no =
  match load t page_no with
  | Leaf _ -> 1
  | Internal n -> 1 + height_from t n.children.(0)

let height t = height_from t t.root

(* -- invariant checking (tests) ------------------------------------------- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec walk page_no lo hi depth =
    (* every key k in this subtree must satisfy lo <= k < hi *)
    match load t page_no with
    | Leaf l ->
        Array.iteri
          (fun i k ->
            (match lo with
            | Some lo when String.compare k lo < 0 ->
                fail "leaf %d: key below separator" page_no
            | _ -> ());
            (match hi with
            | Some hi when String.compare k hi >= 0 ->
                fail "leaf %d: key at/above separator" page_no
            | _ -> ());
            if i > 0 && String.compare l.lkeys.(i - 1) k >= 0 then
              fail "leaf %d: keys not strictly ascending" page_no)
          l.lkeys;
        if leaf_bytes l > t.page_size then fail "leaf %d overflows" page_no;
        (depth, Array.length l.lkeys)
    | Internal n ->
        if Array.length n.ikeys = 0 then fail "internal %d: no keys" page_no;
        Array.iteri
          (fun i k ->
            if i > 0 && String.compare n.ikeys.(i - 1) k >= 0 then
              fail "internal %d: separators not ascending" page_no)
          n.ikeys;
        if internal_bytes n > t.page_size then
          fail "internal %d overflows" page_no;
        let nk = Array.length n.ikeys in
        let total = ref 0 and leaf_depth = ref (-1) in
        for i = 0 to nk do
          let lo_i = if i = 0 then lo else Some n.ikeys.(i - 1) in
          let hi_i = if i = nk then hi else Some n.ikeys.(i) in
          let d, cnt = walk n.children.(i) lo_i hi_i (depth + 1) in
          if !leaf_depth = -1 then leaf_depth := d
          else if d <> !leaf_depth then fail "unbalanced at internal %d" page_no;
          total := !total + cnt
        done;
        (!leaf_depth, !total)
  in
  let _, total = walk t.root None None 0 in
  if total <> t.count then
    fail "count mismatch: tree says %d, counted %d" t.count total
