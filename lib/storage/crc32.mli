(** CRC-32 checksums (IEEE polynomial, as in zlib/gzip).

    Used two ways: as the per-page sidecar checksum {!Disk} verifies on every
    miss-path read, and as the per-record payload checksum framing WAL
    entries so recovery can stop at the first torn record. *)

val bytes : Bytes.t -> int
val bytes_sub : Bytes.t -> int -> int -> int
val string : string -> int
val string_sub : string -> int -> int -> int
