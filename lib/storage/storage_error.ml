type kind = Corrupt | Torn | Io_transient | Missing | Degraded_read_only

exception Error of kind * string

let kind_name = function
  | Corrupt -> "corrupt"
  | Torn -> "torn"
  | Io_transient -> "io-transient"
  | Missing -> "missing"
  | Degraded_read_only -> "degraded-read-only"

let error kind fmt =
  Printf.ksprintf (fun msg -> raise (Error (kind, msg))) fmt

let pp ppf (kind, msg) =
  Format.fprintf ppf "storage error [%s]: %s" (kind_name kind) msg

let () =
  Printexc.register_printer (function
    | Error (kind, msg) ->
        Some (Printf.sprintf "Storage_error.Error(%s, %S)" (kind_name kind) msg)
    | _ -> None)
