(* Doubly-linked list threaded through hashtable entries: O(1) find/add with
   a sentinel node whose [next] is the most recently used entry and whose
   [prev] is the least recently used one. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable sentinel : ('k, 'v) node option;
}

let create ~cap =
  if cap < 1 then invalid_arg "Lru.create: cap < 1";
  { cap; table = Hashtbl.create (2 * cap); sentinel = None }

let length t = Hashtbl.length t.table

let sentinel_of t key value =
  match t.sentinel with
  | Some s -> s
  | None ->
      (* The sentinel needs dummy key/value; we build it lazily from the
         first insertion so no Obj.magic is needed. *)
      let rec s = { key; value; prev = s; next = s } in
      t.sentinel <- Some s;
      s

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let link_front s node =
  node.next <- s.next;
  node.prev <- s;
  s.next.prev <- node;
  s.next <- node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      (match t.sentinel with
      | Some s when s.next != node ->
          unlink node;
          link_front s node
      | _ -> ());
      Some node.value

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
      unlink node;
      Hashtbl.remove t.table key;
      (* dropping the sentinel when the map empties releases the first-ever
         key/value it captured and restarts the lazy build on the next add *)
      if Hashtbl.length t.table = 0 then t.sentinel <- None

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some node ->
      unlink node;
      Hashtbl.remove t.table key
  | None -> ());
  let s = sentinel_of t key value in
  let node = { key; value; prev = s; next = s } in
  link_front s node;
  Hashtbl.replace t.table key node;
  if Hashtbl.length t.table > t.cap then begin
    let victim = s.prev in
    unlink victim;
    Hashtbl.remove t.table victim.key;
    Some (victim.key, victim.value)
  end
  else None

let iter f t = Hashtbl.iter (fun k node -> f k node.value) t.table

let sentinel_allocated t = t.sentinel <> None

let clear t =
  Hashtbl.reset t.table;
  t.sentinel <- None
