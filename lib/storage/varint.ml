let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

(* Decoding is hardened against hostile bytes: an OCaml int has 63 bits, so
   any encoding needs at most 9 continuation groups (shifts 0..56). A tenth
   byte would shift past bit 62 — unspecified in OCaml — so it is rejected
   before the shift happens, and a ninth (terminal) byte above 0x3F would
   land in bit 62 — the sign bit — turning the decoded value negative, so it
   is rejected too: [write] only accepts non-negative ints, whose top byte
   never exceeds 0x3F. Overlong encodings (a continuation byte followed
   by a redundant 0x00 terminator, e.g. "\x80\x00" for 0) are rejected too:
   [write] never emits them, so their presence means corrupt input, and
   accepting them would make the encoding non-canonical. *)
let max_shift = 56

let read s pos =
  let rec go acc shift =
    if !pos >= String.length s then
      Storage_error.error Corrupt "Varint.read: truncated at byte %d" !pos;
    let b = Char.code s.[!pos] in
    incr pos;
    if b land 0x80 = 0 then
      if b = 0 && shift > 0 then
        Storage_error.error Corrupt "Varint.read: overlong encoding at byte %d"
          (!pos - 1)
      else if shift = max_shift && b > 0x3F then
        Storage_error.error Corrupt
          "Varint.read: value exceeds 62 bits at byte %d" (!pos - 1)
      else acc lor (b lsl shift)
    else if shift >= max_shift then
      Storage_error.error Corrupt
        "Varint.read: value exceeds 63 bits at byte %d" (!pos - 1)
    else go (acc lor ((b land 0x7f) lsl shift)) (shift + 7)
  in
  go 0 0

let size n =
  if n < 0 then invalid_arg "Varint.size: negative";
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go n 1
