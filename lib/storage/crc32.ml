(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, one byte at a
   time. Fast enough for 4 KiB pages on the simulated miss path; a real file
   backend would swap in a hardware-accelerated implementation behind the
   same signature. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b (* byte *) =
  let t = Lazy.force table in
  t.((crc lxor b) land 0xff) lxor (crc lsr 8)

let bytes_sub b off len =
  let crc = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get b i))
  done;
  !crc lxor 0xFFFFFFFF

let bytes b = bytes_sub b 0 (Bytes.length b)

let string_sub s off len = bytes_sub (Bytes.unsafe_of_string s) off len

let string s = string_sub s 0 (String.length s)
