(* Retry policy with decorrelated-jitter backoff and a per-device circuit
   breaker — lifted out of [Disk.read_verified] so the serving layer can
   reason about (and test) fault absorption as policy, not as pager
   plumbing.

   Billing lives here now: [Stats.read_retries] is bumped once per retry
   actually performed, after the attempt has failed transiently and before
   the next attempt is made. The old in-Disk accounting incremented the
   counter as part of the fault decision itself, so a first-try success
   following a prior caller's fault could bill a retry that never happened;
   the directed test in test_serve pins the corrected semantics.

   The breaker is deliberately count-based, not clock-based: once open it
   fails fast with [Degraded_read_only] and lets every [probe_every]-th call
   through as a probe. A successful probe closes it. Counting calls instead
   of elapsed time keeps the open/probe/close sequence a deterministic
   function of the workload, which is what the seeded fault tests need. *)

type policy = {
  attempts : int; (* total attempts, including the first *)
  base_spins : int; (* first backoff, in Domain.cpu_relax spins *)
  cap_spins : int;
}

let default_policy = { attempts = 4; base_spins = 8; cap_spins = 1024 }

let policy ?(attempts = default_policy.attempts)
    ?(base_spins = default_policy.base_spins)
    ?(cap_spins = default_policy.cap_spins) () =
  if attempts < 1 then invalid_arg "Retry.policy: attempts must be >= 1";
  { attempts; base_spins; cap_spins }

type breaker = {
  name : string;
  threshold : int;
  probe_every : int;
  consecutive : int Atomic.t; (* Io_transient/Torn faults in a row *)
  open_ : bool Atomic.t;
  rejections : int Atomic.t; (* fail-fasts since the breaker opened *)
  opens : int Atomic.t;
}

let breaker ?(threshold = 8) ?(probe_every = 4) name =
  if threshold < 1 then invalid_arg "Retry.breaker: threshold must be >= 1";
  if probe_every < 1 then invalid_arg "Retry.breaker: probe_every must be >= 1";
  let b =
    { name; threshold; probe_every; consecutive = Atomic.make 0;
      open_ = Atomic.make false; rejections = Atomic.make 0;
      opens = Atomic.make 0 }
  in
  (* an open breaker is a degraded device: surface it to the health fold so
     admission tightens while reads are failing fast (replace-by-name keeps
     one source per device across environment rebuilds) *)
  Svr_obs.Health.register_source ("breaker:" ^ name) (fun () ->
      if Atomic.get b.open_ then
        Svr_obs.Health.Warn
          (Printf.sprintf "%s: circuit open after %d consecutive faults" name
             (Atomic.get b.consecutive))
      else Svr_obs.Health.Ok);
  b

let breaker_open b = Atomic.get b.open_
let breaker_opens b = Atomic.get b.opens
let breaker_rejections b = Atomic.get b.rejections

let opens_counter name =
  Svr_obs.Metrics.counter
    ~labels:[ ("device", name) ]
    ~help:"circuit-breaker open transitions" "svr_breaker_opens_total"

let record_failure b =
  let n = Atomic.fetch_and_add b.consecutive 1 + 1 in
  if n >= b.threshold && not (Atomic.get b.open_) then begin
    Atomic.set b.open_ true;
    Atomic.set b.rejections 0;
    Atomic.incr b.opens;
    Svr_obs.Metrics.inc (opens_counter b.name);
    if Svr_obs.Trace.hot () then
      Svr_obs.Trace.event "breaker-open"
        ~attrs:[ ("device", b.name); ("consecutive", string_of_int n) ]
  end

let record_success b =
  Atomic.set b.consecutive 0;
  if Atomic.get b.open_ then begin
    Atomic.set b.open_ false;
    if Svr_obs.Trace.hot () then
      Svr_obs.Trace.event "breaker-close" ~attrs:[ ("device", b.name) ]
  end

(* may this call proceed? closed breaker: yes, one bool load. open breaker:
   fail fast, except every [probe_every]-th rejected call goes through as
   the probe that can close it *)
let admit b =
  if not (Atomic.get b.open_) then true
  else
    let r = Atomic.fetch_and_add b.rejections 1 + 1 in
    r mod b.probe_every = 0

(* -- backoff -------------------------------------------------------------- *)

(* decorrelated jitter over cpu_relax spins: next = uniform(base, 3*prev),
   capped. The spin counts only burn cycles — they are intentionally outside
   the deterministic replay surface (fault sequencing lives in [Fault]) — so
   a module-local xorshift state shared loosely across domains is fine. *)
let jitter_state = Atomic.make 0x9e3779b97f4a7c15L

let jitter_next () =
  let x = Atomic.get jitter_state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  Atomic.set jitter_state x;
  Int64.to_int (Int64.shift_right_logical x 1)

let backoff_spins p ~prev =
  let hi = max (p.base_spins + 1) (3 * prev) in
  let r = p.base_spins + (jitter_next () mod (hi - p.base_spins)) in
  min p.cap_spins r

(* the same decorrelated-jitter curve over milliseconds, for callers that
   sleep instead of spinning (the network client honoring a retry-after
   hint): next = uniform(base, 3*prev), capped *)
let jitter_ms ~base_ms ~cap_ms ~prev_ms =
  if base_ms < 0.0 || cap_ms < base_ms then
    invalid_arg "Retry.jitter_ms: need 0 <= base_ms <= cap_ms";
  let hi = Float.max (base_ms +. 1e-6) (3.0 *. prev_ms) in
  let u =
    float_of_int (jitter_next () land 0xFFFFFF) /. float_of_int 0xFFFFFF
  in
  Float.min cap_ms (base_ms +. (u *. (hi -. base_ms)))

let backoff spins =
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

(* -- the retry loop ------------------------------------------------------- *)

let run ?(policy = default_policy) ?breaker:b ~stats ~what f =
  (match b with
  | Some b when not (admit b) ->
      Storage_error.error Degraded_read_only
        "%s: circuit breaker open on %s (%d consecutive faults); failing \
         fast"
        what b.name (Atomic.get b.consecutive)
  | _ -> ());
  let c = Stats.cell stats in
  let rec go n prev_spins =
    match f () with
    | v ->
        (match b with Some b -> record_success b | None -> ());
        v
    | exception (Storage_error.Error (kind, _) as e) -> (
        (match kind with
        | Storage_error.Io_transient | Storage_error.Torn -> (
            match b with Some b -> record_failure b | None -> ())
        | _ -> ());
        match kind with
        | Storage_error.Io_transient when n + 1 < policy.attempts ->
            (* the retry is now certain to happen: bill it *)
            c.Stats.read_retries <- c.Stats.read_retries + 1;
            if Svr_obs.Trace.hot () then
              Svr_obs.Trace.event "read-retry"
                ~attrs:[ ("what", what); ("attempt", string_of_int (n + 1)) ];
            let spins = backoff_spins policy ~prev:prev_spins in
            backoff spins;
            go (n + 1) spins
        | _ -> raise e)
  in
  go 0 policy.base_spins
