type t = {
  page_size : int;
  table_pool_pages : int;
  blob_pool_pages : int;
  pager_shards : int;
  cost : Stats.cost_model;
  stats : Stats.t;
  mutable table_pagers : (string * Pager.t) list;
  mutable blob_pagers : (string * Pager.t) list;
}

let create ?(page_size = 4096) ?(table_pool_pages = 8192)
    ?(blob_pool_pages = 25600) ?(pager_shards = Pager.default_shards)
    ?(cost = Stats.default_cost) () =
  { page_size; table_pool_pages; blob_pool_pages; pager_shards; cost;
    stats = Stats.create (); table_pagers = []; blob_pagers = [] }

let btree t ~name =
  let disk = Disk.create ~page_size:t.page_size ~name t.stats in
  let pager =
    Pager.create ~pool_pages:t.table_pool_pages ~shards:t.pager_shards
      ~stats:t.stats disk
  in
  t.table_pagers <- (name, pager) :: t.table_pagers;
  Btree.create pager

let blob_store t ~name =
  let disk = Disk.create ~page_size:t.page_size ~name t.stats in
  let pager =
    Pager.create ~pool_pages:t.blob_pool_pages ~shards:t.pager_shards
      ~stats:t.stats disk
  in
  t.blob_pagers <- (name, pager) :: t.blob_pagers;
  Blob_store.create pager

let cold_btree t ~name =
  let disk = Disk.create ~page_size:t.page_size ~name t.stats in
  let pager =
    Pager.create ~pool_pages:t.blob_pool_pages ~shards:t.pager_shards
      ~stats:t.stats disk
  in
  t.blob_pagers <- (name, pager) :: t.blob_pagers;
  Btree.create pager

let stats t = t.stats
let cost t = t.cost
let reset_stats t = Stats.reset t.stats

let drop_blob_caches t =
  List.iter (fun (_, pager) -> Pager.drop_cache pager) t.blob_pagers

let drop_all_caches t =
  drop_blob_caches t;
  List.iter (fun (_, pager) -> Pager.drop_cache pager) t.table_pagers

let device_sizes t =
  let size (name, pager) = (name, Disk.size_bytes (Pager.disk pager)) in
  List.rev_map size t.table_pagers @ List.rev_map size t.blob_pagers

let device_size t ~name =
  match List.assoc_opt name (device_sizes t) with
  | Some size -> size
  | None -> raise Not_found
