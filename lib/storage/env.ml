type t = {
  page_size : int;
  table_pool_pages : int;
  blob_pool_pages : int;
  pager_shards : int;
  cost : Stats.cost_model;
  stats : Stats.t;
  fault : Fault.t option;
  breaker_threshold : int option; (* Some n = per-device circuit breakers *)
  mutable breakers : (string * Retry.breaker) list;
  wal : Wal.t option; (* Some iff the environment is durable *)
  mutable table_pagers : (string * Pager.t) list;
  mutable blob_pagers : (string * Pager.t) list;
  (* component registry: the in-memory state (tree roots, blob directories)
     that checkpoint snapshots and recovery restores alongside the
     device-level journal *)
  mutable trees : Btree.t list;
  mutable blob_stores : Blob_store.t list;
}

let create ?(page_size = 4096) ?(table_pool_pages = 8192)
    ?(blob_pool_pages = 25600) ?(pager_shards = Pager.default_shards)
    ?(cost = Stats.default_cost) ?fault ?breaker_threshold ?(durable = false)
    ?(wal_group = 32) () =
  (match breaker_threshold with
  | Some n when n < 1 ->
      invalid_arg "Env.create: breaker_threshold must be >= 1"
  | _ -> ());
  let stats = Stats.create () in
  (* span sim-durations come straight from the calling domain's counter
     cell, so a span's sim-ms is exactly the I/O cost model applied to the
     I/O that domain performed inside it. Last environment created wins —
     the tracer is process-global, environments in practice are not. *)
  Svr_obs.Trace.set_sim_clock (fun () ->
      Stats.simulated_ms ~cost (Stats.cell stats));
  (* the global sim clock (time-series tick stamps, SLO windows) must be
     readable from any domain, so it sums every domain's cell — monotonic
     process-wide, unlike the per-domain span clock above *)
  Svr_obs.Clock.set_sim_source (fun () ->
      Stats.simulated_ms ~cost (Stats.snapshot stats));
  let breakers = ref [] in
  let mk_breaker name =
    match breaker_threshold with
    | None -> None
    | Some threshold ->
        let b = Retry.breaker ~threshold name in
        breakers := (name, b) :: !breakers;
        Some b
  in
  let wal =
    if durable then
      (* the log device is unjournaled on purpose: it must survive the
         revert that rolls every data device back to its checkpoint *)
      Some
        (Wal.create ~group:wal_group
           (Disk.create ~page_size ?fault ?breaker:(mk_breaker "wal")
              ~name:"wal" stats))
    else None
  in
  { page_size; table_pool_pages; blob_pool_pages; pager_shards; cost; stats;
    fault; breaker_threshold; breakers = !breakers; wal; table_pagers = [];
    blob_pagers = []; trees = []; blob_stores = [] }

let durable t = Option.is_some t.wal
let wal t = t.wal
let fault t = t.fault

let breakers t = List.rev t.breakers

let breaker t ~name = List.assoc_opt name t.breakers

let all_pagers t = List.rev_append t.table_pagers t.blob_pagers

(* A component created after the last checkpoint would be rolled back to a
   zeroed, unreadable root if recovery reverted its device wholesale — so a
   fresh device is immediately flushed and marked stable, making "empty"
   the component's own recovery point. Creation between checkpoints is thus
   safe; filling the component (build/rebuild) must still end with
   [checkpoint], because bulk loads bypass the WAL. *)
let component_stable pager =
  Pager.flush pager;
  Disk.mark_stable (Pager.disk pager)

let new_disk t ~name =
  let breaker =
    match t.breaker_threshold with
    | None -> None
    | Some threshold ->
        let b = Retry.breaker ~threshold name in
        t.breakers <- (name, b) :: t.breakers;
        Some b
  in
  Disk.create ~page_size:t.page_size ?fault:t.fault ?breaker
    ~journal:(durable t) ~name t.stats

let btree t ~name =
  let disk = new_disk t ~name in
  let pager =
    Pager.create ~pool_pages:t.table_pool_pages ~shards:t.pager_shards
      ~stats:t.stats disk
  in
  t.table_pagers <- (name, pager) :: t.table_pagers;
  let tree = Btree.create pager in
  t.trees <- tree :: t.trees;
  if durable t then component_stable pager;
  tree

let blob_store t ~name =
  let disk = new_disk t ~name in
  let pager =
    Pager.create ~pool_pages:t.blob_pool_pages ~shards:t.pager_shards
      ~stats:t.stats disk
  in
  t.blob_pagers <- (name, pager) :: t.blob_pagers;
  let store = Blob_store.create pager in
  t.blob_stores <- store :: t.blob_stores;
  if durable t then component_stable pager;
  store

let cold_btree t ~name =
  let disk = new_disk t ~name in
  let pager =
    Pager.create ~pool_pages:t.blob_pool_pages ~shards:t.pager_shards
      ~stats:t.stats disk
  in
  t.blob_pagers <- (name, pager) :: t.blob_pagers;
  let tree = Btree.create pager in
  t.trees <- tree :: t.trees;
  if durable t then component_stable pager;
  tree

let stats t = t.stats
let cost t = t.cost
let reset_stats t = Stats.reset t.stats

let drop_blob_caches t =
  List.iter (fun (_, pager) -> Pager.drop_cache pager) t.blob_pagers

let drop_all_caches t =
  drop_blob_caches t;
  List.iter (fun (_, pager) -> Pager.drop_cache pager) t.table_pagers

let flush_all t = List.iter (fun (_, pager) -> Pager.flush pager) (all_pagers t)

let device_sizes t =
  let size (name, pager) = (name, Disk.size_bytes (Pager.disk pager)) in
  let wal_size =
    match t.wal with
    | Some w -> [ ("wal", Disk.size_bytes (Wal.device w)) ]
    | None -> []
  in
  List.rev_map size t.table_pagers @ List.rev_map size t.blob_pagers @ wal_size

let device_size t ~name =
  match List.assoc_opt name (device_sizes t) with
  | Some size -> size
  | None ->
      Storage_error.error Missing "Env.device_size: unknown device %S (have %s)"
        name
        (String.concat ", "
           (List.map (fun (n, _) -> Printf.sprintf "%S" n) (device_sizes t)))

(* -- durability ----------------------------------------------------------- *)

let log t record =
  match t.wal with None -> () | Some wal -> Wal.append wal record

let log_flush t =
  match t.wal with None -> () | Some wal -> Wal.flush wal

let checkpoint t =
  match t.wal with
  | None -> ()
  | Some wal ->
      (* order matters: (1) force the log, so a crash during (2) finds every
         applied update in it; (2) force the data pages; (3) truncate — one
         atomic header write, the commit point; (4) snapshot, which touches
         no device, so no crash can split (3) from (4) *)
      let sp = Svr_obs.Trace.root "checkpoint" in
      let phase name f =
        let p = Svr_obs.Trace.push name in
        Fun.protect ~finally:(fun () -> Svr_obs.Trace.pop p) f
      in
      Fun.protect
        ~finally:(fun () -> Svr_obs.Trace.pop sp)
        (fun () ->
          phase "wal-force" (fun () -> Wal.flush wal);
          phase "pool-flush" (fun () -> flush_all t);
          phase "log-truncate" (fun () -> Wal.truncate wal);
          List.iter
            (fun (_, p) -> Disk.mark_stable (Pager.disk p))
            (all_pagers t);
          List.iter Btree.mark_stable t.trees;
          List.iter Blob_store.mark_stable t.blob_stores)

let crash t =
  if not (durable t) then
    invalid_arg "Env.crash: environment was created without ~durable:true";
  (* everything volatile dies: pool pages (dirty ones unwritten) and the
     unforced WAL tail. The devices keep whatever had been written. *)
  List.iter (fun (_, p) -> Pager.discard p) (all_pagers t);
  (match t.wal with Some wal -> Wal.lose_pending wal | None -> ())

let recover t =
  match t.wal with
  | None -> []
  | Some wal ->
      let sp = Svr_obs.Trace.root "recover" in
      let t0 = Svr_obs.Clock.now_ms () in
      let revert = Svr_obs.Trace.push "device-revert" in
      List.iter (fun (_, p) -> Pager.discard p) (all_pagers t);
      List.iter (fun (_, p) -> Disk.revert_to_stable (Pager.disk p)) (all_pagers t);
      List.iter Btree.revert_to_stable t.trees;
      List.iter Blob_store.revert_to_stable t.blob_stores;
      Svr_obs.Trace.pop revert;
      let scan = Svr_obs.Trace.push "log-scan" in
      let records = Wal.recover_scan wal in
      Svr_obs.Trace.pop scan;
      let c = Stats.cell t.stats in
      c.Stats.recovery_replays <- c.Stats.recovery_replays + List.length records;
      Svr_obs.Metrics.observe
        (Svr_obs.Metrics.histogram ~base:0.001
           ~help:"wall ms spent reverting devices and scanning the log"
           "svr_recovery_replay_ms")
        (Svr_obs.Clock.now_ms () -. t0);
      Svr_obs.Trace.annotate_f sp "records" (fun () ->
          string_of_int (List.length records));
      Svr_obs.Trace.pop sp;
      records
