(** A paged B+-tree with variable-length byte-string keys and values.

    This is the stand-in for BerkeleyDB's B+-trees: the Score table, the
    short inverted lists, the ListScore/ListChunk tables and the Score
    method's clustered long list are all instances of it (Section 5.2 of the
    paper). Keys compare lexicographically — build composite keys with
    {!Order_key}. All pages go through a {!Pager}, so accesses are cached and
    counted.

    Concurrency/consistency notes: single-threaded; deletion is lazy (no node
    rebalancing — underfull and empty leaves persist until an offline rebuild,
    which is how the index maintenance story amortises space anyway); cursors
    must not be used across mutations of the same tree. *)

type t

val create : Pager.t -> t
(** An empty tree rooted at a fresh leaf page. *)

val count : t -> int
(** Number of live entries. *)

val find : t -> string -> string option

val mem : t -> string -> bool

val insert : t -> string -> string -> unit
(** Upsert. @raise Invalid_argument if the entry cannot fit in a page
    (key + value + header > page size). *)

val delete : t -> string -> bool
(** Remove a key; [true] if it was present. Lazy: pages are never merged. *)

val clear : t -> unit
(** Drop every entry by re-rooting at a fresh empty leaf — O(1), used by the
    offline merge. Old pages are abandoned (reclaimed only by rebuilding the
    device, like all lazy deletion here). *)

val iter_from : t -> string -> (string -> string -> bool) -> unit
(** [iter_from t key f] visits entries with key ≥ [key] in ascending key
    order, stopping early when [f] returns [false]. *)

val iter_all : t -> (string -> string -> bool) -> unit

val iter_prefix : t -> string -> (string -> string -> bool) -> unit
(** Visit exactly the entries whose key starts with the given prefix. *)

type cursor

val seek : t -> string -> cursor
(** Position a cursor at the first entry with key ≥ the argument. *)

val cursor_next : cursor -> (string * string) option
(** The entry under the cursor (advancing past it), or [None] at the end. *)

val min_binding : t -> (string * string) option

val height : t -> int
(** Tree height in nodes (1 = a single leaf), for diagnostics. *)

val check_invariants : t -> unit
(** Walk the whole tree asserting ordering and structural invariants.
    @raise Failure with a description on the first violation. Test use. *)

val mark_stable : t -> unit
(** Record the current (root, count) as the checkpointed state. Called by
    [Env.checkpoint] after the tree's pages are flushed and its device
    marked stable. *)

val revert_to_stable : t -> unit
(** Reset (root, count) to the last {!mark_stable} — the in-memory half of
    recovery; the pages themselves come back via [Disk.revert_to_stable]. *)
