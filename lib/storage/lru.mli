(** A generic LRU map with a fixed capacity, used as the page replacement
    policy of {!Pager} (the stand-in for BerkeleyDB's buffer cache). *)

type ('k, 'v) t

val create : cap:int -> ('k, 'v) t
(** @raise Invalid_argument if [cap < 1]. *)

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Looks up a key and, on a hit, marks it most recently used. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Inserts (or replaces) a binding as most recently used. Returns the entry
    evicted to stay within capacity, if any. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Removing the last binding also drops the internal sentinel node, so the
    map holds no reference to any key or value ever inserted. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iterates in unspecified order. *)

val clear : ('k, 'v) t -> unit

val sentinel_allocated : ('k, 'v) t -> bool
(** Introspection for tests: is the lazily-built sentinel node currently
    allocated? It exists iff the map is non-empty. *)
