(** A storage environment: shared I/O statistics plus factories for the two
    device classes the paper distinguishes.

    "Hot" devices (B+-trees for the Score table, short lists, ListScore /
    ListChunk) get pools large enough to stay memory-resident — the paper
    observes they are "easily maintained in the database cache". "Cold"
    devices (blob stores for long inverted lists) get a bounded pool that the
    benchmark harness empties before each timed query to simulate a data set
    that does not fit in memory. *)

type t

val create :
  ?page_size:int ->
  ?table_pool_pages:int ->
  ?blob_pool_pages:int ->
  ?pager_shards:int ->
  ?cost:Stats.cost_model ->
  unit ->
  t
(** Defaults: 4 KiB pages; 8192-page (32 MiB) pools per table; a 25600-page
    (100 MiB) pool per blob store, matching the paper's BerkeleyDB cache.
    [pager_shards] (default {!Pager.default_shards}) is the lock-sharding
    factor of every buffer pool created by this environment. *)

val btree : t -> name:string -> Btree.t
(** A fresh B+-tree on its own hot device. *)

val blob_store : t -> name:string -> Blob_store.t
(** A fresh blob store on its own cold device. *)

val cold_btree : t -> name:string -> Btree.t
(** A B+-tree on a cold device: its pool is the bounded blob-class pool and
    {!drop_blob_caches} empties it. The Score method's updatable long list —
    too big to stay cached — is the one user. *)

val stats : t -> Stats.t

val cost : t -> Stats.cost_model

val reset_stats : t -> unit

val drop_blob_caches : t -> unit
(** Cold-cache the long lists: flush and empty every blob-store pool. *)

val drop_all_caches : t -> unit

val device_sizes : t -> (string * int) list
(** [(name, bytes)] footprint of every device created so far. *)

val device_size : t -> name:string -> int
(** Footprint of one named device. @raise Not_found if unknown. *)
