(** A storage environment: shared I/O statistics plus factories for the two
    device classes the paper distinguishes.

    "Hot" devices (B+-trees for the Score table, short lists, ListScore /
    ListChunk) get pools large enough to stay memory-resident — the paper
    observes they are "easily maintained in the database cache". "Cold"
    devices (blob stores for long inverted lists) get a bounded pool that the
    benchmark harness empties before each timed query to simulate a data set
    that does not fit in memory.

    Created with [~durable:true], the environment also owns a {!Wal} on its
    own device and gives every data device a before-image journal, making
    the crash/checkpoint/recover cycle available:

    - update layers call {!log} before applying each logical update;
    - {!checkpoint} forces log and pools, truncates the log atomically, and
      snapshots all in-memory component state (tree roots, blob dirs);
    - {!crash} models process death: pools and the unforced WAL tail are
      lost, devices keep what was physically written;
    - {!recover} reverts every data device (and component) to the last
      checkpoint and returns the surviving logged records, which the owner
      of the environment (Index / Engine) replays through its normal update
      code — then checkpoints.

    An optional {!Fault.t} is threaded into every device so crashes,
    transient read errors and bit flips arrive deterministically. *)

type t

val create :
  ?page_size:int ->
  ?table_pool_pages:int ->
  ?blob_pool_pages:int ->
  ?pager_shards:int ->
  ?cost:Stats.cost_model ->
  ?fault:Fault.t ->
  ?breaker_threshold:int ->
  ?durable:bool ->
  ?wal_group:int ->
  unit ->
  t
(** Defaults: 4 KiB pages; 8192-page (32 MiB) pools per table; a 25600-page
    (100 MiB) pool per blob store, matching the paper's BerkeleyDB cache.
    [pager_shards] (default {!Pager.default_shards}) is the lock-sharding
    factor of every buffer pool created by this environment. [durable]
    (default false) turns on the WAL + journaling machinery; [wal_group]
    (default 32) is the group-commit batch. [breaker_threshold] (default
    none) attaches a {!Retry} circuit breaker to every device created by
    this environment, opening after that many consecutive transient/torn
    read faults. @raise Invalid_argument if [breaker_threshold < 1]. *)

val btree : t -> name:string -> Btree.t
(** A fresh B+-tree on its own hot device. *)

val blob_store : t -> name:string -> Blob_store.t
(** A fresh blob store on its own cold device. *)

val cold_btree : t -> name:string -> Btree.t
(** A B+-tree on a cold device: its pool is the bounded blob-class pool and
    {!drop_blob_caches} empties it. The Score method's updatable long list —
    too big to stay cached — is the one user. *)

val stats : t -> Stats.t

val cost : t -> Stats.cost_model

val reset_stats : t -> unit

val drop_blob_caches : t -> unit
(** Cold-cache the long lists: flush and empty every blob-store pool. *)

val drop_all_caches : t -> unit

val flush_all : t -> unit
(** Write back every dirty page of every pool (pages stay cached). *)

val device_sizes : t -> (string * int) list
(** [(name, bytes)] footprint of every device created so far (including
    ["wal"] when durable). *)

val device_size : t -> name:string -> int
(** Footprint of one named device.
    @raise Storage_error.Error [(Missing, _)] naming the unknown device and
    the devices that do exist. *)

(** {2 Durability} *)

val durable : t -> bool

val fault : t -> Fault.t option

val breakers : t -> (string * Retry.breaker) list
(** Per-device circuit breakers, in device-creation order (empty unless
    [breaker_threshold] was given). *)

val breaker : t -> name:string -> Retry.breaker option

val wal : t -> Wal.t option

val log : t -> Wal.record -> unit
(** Append a logical update record (no-op when not durable). Call {e
    before} applying the update, write-ahead style. *)

val log_flush : t -> unit
(** Force pending records to the log device (group commit happens
    automatically every [wal_group] records; this is the explicit commit). *)

val checkpoint : t -> unit
(** Make everything applied so far crash-proof: force log and pools,
    truncate the log (the atomic commit point), snapshot component state
    and mark every device stable. No-op when not durable.
    @raise Fault.Crash if the fault clock trips mid-checkpoint — recovery
    then falls back to the {e previous} checkpoint plus the full log. *)

val crash : t -> unit
(** Simulate process death at this instant: buffer pools and the unforced
    WAL tail vanish; devices keep exactly what was physically written.
    Follow with {!recover}. @raise Invalid_argument when not durable. *)

val recover : t -> Wal.record list
(** Crash recovery, storage half: drop all pool pages (no write-back),
    revert every data device and component to the last checkpoint, scan the
    log. Returns the surviving records in append order (counted in
    [recovery_replays]); the caller replays them through the normal update
    path and then calls {!checkpoint}. Returns [[]] when not durable. *)
