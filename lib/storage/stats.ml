(* Per-domain counter cells: each domain that touches a [t] gets its own
   cell via domain-local storage, so hot-path increments are plain mutable
   writes to memory no other domain touches. Aggregation (snapshot / reset /
   per_domain) walks the registry under a mutex; it is meant for quiescent
   measurement points, not for racing against live increments. *)

type counters = {
  mutable logical_reads : int;
  mutable cache_hits : int;
  mutable seq_reads : int;
  mutable rand_reads : int;
  mutable page_writes : int;
  mutable seq_writes : int;
  mutable blocks_decoded : int;
  mutable blocks_skipped : int;
  mutable upper_seeks : int;
  mutable codec_bytes_written : int;
  mutable wal_appends : int;
  mutable wal_bytes : int;
  mutable checksum_failures : int;
  mutable read_retries : int;
  mutable recovery_replays : int;
  mutable stall_ms : int;
}

type t = {
  mu : Mutex.t;
  cells : (int * counters) list ref; (* (domain id, cell), insertion order *)
  key : counters Domain.DLS.key;
}

type cost_model = {
  seq_read_ms : float;
  rand_read_ms : float;
  write_ms : float;
  seq_write_ms : float;
}

let default_cost =
  { seq_read_ms = 0.05; rand_read_ms = 8.0; write_ms = 8.0;
    seq_write_ms = 0.05 }

let zero () =
  { logical_reads = 0; cache_hits = 0; seq_reads = 0; rand_reads = 0;
    page_writes = 0; seq_writes = 0; blocks_decoded = 0; blocks_skipped = 0;
    upper_seeks = 0; codec_bytes_written = 0;
    wal_appends = 0; wal_bytes = 0; checksum_failures = 0; read_retries = 0;
    recovery_replays = 0; stall_ms = 0 }

let create () =
  let mu = Mutex.create () in
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = zero () in
        let id = (Domain.self () :> int) in
        Mutex.lock mu;
        cells := (id, c) :: !cells;
        Mutex.unlock mu;
        c)
  in
  { mu; cells; key }

let cell t = Domain.DLS.get t.key

let zero_counters c =
  c.logical_reads <- 0;
  c.cache_hits <- 0;
  c.seq_reads <- 0;
  c.rand_reads <- 0;
  c.page_writes <- 0;
  c.seq_writes <- 0;
  c.blocks_decoded <- 0;
  c.blocks_skipped <- 0;
  c.upper_seeks <- 0;
  c.codec_bytes_written <- 0;
  c.wal_appends <- 0;
  c.wal_bytes <- 0;
  c.checksum_failures <- 0;
  c.read_retries <- 0;
  c.recovery_replays <- 0;
  c.stall_ms <- 0

let reset t =
  Mutex.lock t.mu;
  List.iter (fun (_, c) -> zero_counters c) !(t.cells);
  Mutex.unlock t.mu

let copy c =
  { logical_reads = c.logical_reads; cache_hits = c.cache_hits;
    seq_reads = c.seq_reads; rand_reads = c.rand_reads;
    page_writes = c.page_writes; seq_writes = c.seq_writes;
    blocks_decoded = c.blocks_decoded;
    blocks_skipped = c.blocks_skipped; upper_seeks = c.upper_seeks;
    codec_bytes_written = c.codec_bytes_written; wal_appends = c.wal_appends;
    wal_bytes = c.wal_bytes; checksum_failures = c.checksum_failures;
    read_retries = c.read_retries; recovery_replays = c.recovery_replays;
    stall_ms = c.stall_ms }

let accumulate acc c =
  acc.logical_reads <- acc.logical_reads + c.logical_reads;
  acc.cache_hits <- acc.cache_hits + c.cache_hits;
  acc.seq_reads <- acc.seq_reads + c.seq_reads;
  acc.rand_reads <- acc.rand_reads + c.rand_reads;
  acc.page_writes <- acc.page_writes + c.page_writes;
  acc.seq_writes <- acc.seq_writes + c.seq_writes;
  acc.blocks_decoded <- acc.blocks_decoded + c.blocks_decoded;
  acc.blocks_skipped <- acc.blocks_skipped + c.blocks_skipped;
  acc.upper_seeks <- acc.upper_seeks + c.upper_seeks;
  acc.codec_bytes_written <- acc.codec_bytes_written + c.codec_bytes_written;
  acc.wal_appends <- acc.wal_appends + c.wal_appends;
  acc.wal_bytes <- acc.wal_bytes + c.wal_bytes;
  acc.checksum_failures <- acc.checksum_failures + c.checksum_failures;
  acc.read_retries <- acc.read_retries + c.read_retries;
  acc.recovery_replays <- acc.recovery_replays + c.recovery_replays;
  acc.stall_ms <- acc.stall_ms + c.stall_ms

let snapshot t =
  let acc = zero () in
  Mutex.lock t.mu;
  List.iter (fun (_, c) -> accumulate acc c) !(t.cells);
  Mutex.unlock t.mu;
  acc

let per_domain t =
  Mutex.lock t.mu;
  let cells = List.rev_map (fun (id, c) -> (id, copy c)) !(t.cells) in
  Mutex.unlock t.mu;
  cells

let diff ~after ~before =
  { logical_reads = after.logical_reads - before.logical_reads;
    cache_hits = after.cache_hits - before.cache_hits;
    seq_reads = after.seq_reads - before.seq_reads;
    rand_reads = after.rand_reads - before.rand_reads;
    page_writes = after.page_writes - before.page_writes;
    seq_writes = after.seq_writes - before.seq_writes;
    blocks_decoded = after.blocks_decoded - before.blocks_decoded;
    blocks_skipped = after.blocks_skipped - before.blocks_skipped;
    upper_seeks = after.upper_seeks - before.upper_seeks;
    codec_bytes_written = after.codec_bytes_written - before.codec_bytes_written;
    wal_appends = after.wal_appends - before.wal_appends;
    wal_bytes = after.wal_bytes - before.wal_bytes;
    checksum_failures = after.checksum_failures - before.checksum_failures;
    read_retries = after.read_retries - before.read_retries;
    recovery_replays = after.recovery_replays - before.recovery_replays;
    stall_ms = after.stall_ms - before.stall_ms }

let simulated_ms ?(cost = default_cost) c =
  (float_of_int c.seq_reads *. cost.seq_read_ms)
  +. (float_of_int c.rand_reads *. cost.rand_read_ms)
  +. (float_of_int (c.page_writes - c.seq_writes) *. cost.write_ms)
  +. (float_of_int c.seq_writes *. cost.seq_write_ms)
  +. float_of_int c.stall_ms

(* every field prints, every time: partial output hid the PR 3 counters
   whenever a run happened not to touch the WAL, which made "is durability
   even on?" unanswerable from a stats line *)
let pp ppf c =
  Format.fprintf ppf
    "reads=%d hits=%d seq=%d rand=%d writes=%d seq-w=%d blk-dec=%d \
     blk-skip=%d ef-seek=%d codec-w=%dB wal=%d/%dB crc-fail=%d retries=%d \
     replays=%d stall=%dms (sim %.2f ms)"
    c.logical_reads c.cache_hits c.seq_reads c.rand_reads c.page_writes
    c.seq_writes c.blocks_decoded c.blocks_skipped c.upper_seeks
    c.codec_bytes_written c.wal_appends c.wal_bytes
    c.checksum_failures c.read_retries c.recovery_replays c.stall_ms
    (simulated_ms c)
