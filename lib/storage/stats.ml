type t = {
  mutable logical_reads : int;
  mutable cache_hits : int;
  mutable seq_reads : int;
  mutable rand_reads : int;
  mutable page_writes : int;
  mutable blocks_decoded : int;
  mutable blocks_skipped : int;
}

type cost_model = {
  seq_read_ms : float;
  rand_read_ms : float;
  write_ms : float;
}

let default_cost = { seq_read_ms = 0.05; rand_read_ms = 8.0; write_ms = 8.0 }

let create () =
  { logical_reads = 0; cache_hits = 0; seq_reads = 0; rand_reads = 0;
    page_writes = 0; blocks_decoded = 0; blocks_skipped = 0 }

let reset t =
  t.logical_reads <- 0;
  t.cache_hits <- 0;
  t.seq_reads <- 0;
  t.rand_reads <- 0;
  t.page_writes <- 0;
  t.blocks_decoded <- 0;
  t.blocks_skipped <- 0

let snapshot t =
  { logical_reads = t.logical_reads; cache_hits = t.cache_hits;
    seq_reads = t.seq_reads; rand_reads = t.rand_reads;
    page_writes = t.page_writes; blocks_decoded = t.blocks_decoded;
    blocks_skipped = t.blocks_skipped }

let diff ~after ~before =
  { logical_reads = after.logical_reads - before.logical_reads;
    cache_hits = after.cache_hits - before.cache_hits;
    seq_reads = after.seq_reads - before.seq_reads;
    rand_reads = after.rand_reads - before.rand_reads;
    page_writes = after.page_writes - before.page_writes;
    blocks_decoded = after.blocks_decoded - before.blocks_decoded;
    blocks_skipped = after.blocks_skipped - before.blocks_skipped }

let simulated_ms ?(cost = default_cost) t =
  (float_of_int t.seq_reads *. cost.seq_read_ms)
  +. (float_of_int t.rand_reads *. cost.rand_read_ms)
  +. (float_of_int t.page_writes *. cost.write_ms)

let pp ppf t =
  Format.fprintf ppf
    "reads=%d hits=%d seq=%d rand=%d writes=%d blk-dec=%d blk-skip=%d (sim %.2f ms)"
    t.logical_reads t.cache_hits t.seq_reads t.rand_reads t.page_writes
    t.blocks_decoded t.blocks_skipped (simulated_ms t)
