(* Log layout on the (unjournaled) WAL device:

     page 0           : header = magic "SVRWAL1\n" + u32 epoch
     pages 1..        : a byte stream of framed records

   Frame: [u32 epoch][u32 len][u32 crc32(payload)][payload], big-endian,
   spanning page boundaries freely. The epoch is bumped by [truncate] with a
   single atomic header-page write, which is the checkpoint commit point:
   records of older epochs left behind on the data pages become unreachable
   because the recovery scan stops at the first frame whose epoch does not
   match the header. Zero-filled space parses as epoch 0, which is never
   valid (epochs start at 1), so the scan also stops cleanly at the log's
   natural end. A crash mid-flush leaves a frame prefix whose length or
   payload CRC fails — the torn record recovery truncates at.

   Group commit: [append] serializes into a pending buffer and only writes
   pages every [group] records (or on [flush]). A crash loses the pending
   tail — exactly the unforced updates a real group-committing WAL trades
   for throughput; recovery reports only the records that reached the
   device.

   Payload: varint-framed tag (the index or table the record belongs to),
   an opcode byte, then opcode-specific fields. Scores travel as raw IEEE
   bits so replay is bit-exact. *)

type op =
  | Score_update of { doc : int; score : float }
  | Doc_insert of { doc : int; text : string; score : float }
  | Doc_delete of { doc : int }
  | Doc_update of { doc : int; text : string }
  | Row_put of { key : string; row : string }
  | Row_delete of { key : string }
  | Maintain_step of { terms : string list }

type record = { tag : string; op : op }

type t = {
  disk : Disk.t;
  stats : Stats.t;
  page_size : int;
  group : int;
  mutable epoch : int;
  mutable tail_page : int; (* data page currently being filled *)
  mutable tail_off : int; (* next free byte within it *)
  mutable tail_bytes : Bytes.t; (* in-memory image of the tail page *)
  pending : Buffer.t;
  mutable pending_records : int;
  mutable backlog : int; (* records appended since the last truncate *)
  commit_size_h : Svr_obs.Metrics.histogram;
}

let magic = "SVRWAL1\n"

let set_u32 b off n =
  Bytes.set b off (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (n land 0xff))

let buf_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let write_header t =
  let b = Bytes.make t.page_size '\000' in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  set_u32 b (String.length magic) t.epoch;
  Disk.write t.disk 0 b

let create ?(group = 32) disk =
  if group < 1 then invalid_arg "Wal.create: group < 1";
  let page_size = Disk.page_size disk in
  if page_size < String.length magic + 4 then
    invalid_arg "Wal.create: page size too small for the header";
  let t =
    { disk; stats = Disk.stats disk; page_size; group; epoch = 1;
      tail_page = 0; tail_off = 0; tail_bytes = Bytes.make page_size '\000';
      pending = Buffer.create 512; pending_records = 0; backlog = 0;
      commit_size_h =
        Svr_obs.Metrics.histogram ~base:1.0
          ~help:"records per WAL group-commit flush"
          "svr_wal_group_commit_records" }
  in
  (* checkpoint staleness as seen by the SLO layer: how many records a
     recovery would have to replay right now *)
  Svr_obs.Metrics.gauge
    ~labels:[ ("device", Disk.name disk) ]
    ~help:"WAL records appended since the last truncate (checkpoint debt)"
    "svr_wal_backlog_records"
    (fun () -> float_of_int t.backlog);
  assert (Disk.n_pages disk = 0);
  ignore (Disk.alloc disk); (* header *)
  write_header t;
  t.tail_page <- Disk.alloc disk; (* first data page *)
  t

let group_size t = t.group
let device t = t.disk
let backlog t = t.backlog

(* -- serialization -------------------------------------------------------- *)

let add_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let add_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let read_string s pos =
  let len = Varint.read s pos in
  if len < 0 || !pos + len > String.length s then
    Storage_error.error Corrupt "Wal: string field runs past the record";
  let out = String.sub s !pos len in
  pos := !pos + len;
  out

let read_float s pos =
  if !pos + 8 > String.length s then
    Storage_error.error Corrupt "Wal: float field runs past the record";
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code s.[!pos]));
    incr pos
  done;
  Int64.float_of_bits !bits

let encode_payload buf { tag; op } =
  add_string buf tag;
  match op with
  | Score_update { doc; score } ->
      Buffer.add_char buf '\000';
      Varint.write buf doc;
      add_float buf score
  | Doc_insert { doc; text; score } ->
      Buffer.add_char buf '\001';
      Varint.write buf doc;
      add_string buf text;
      add_float buf score
  | Doc_delete { doc } ->
      Buffer.add_char buf '\002';
      Varint.write buf doc
  | Doc_update { doc; text } ->
      Buffer.add_char buf '\003';
      Varint.write buf doc;
      add_string buf text
  | Row_put { key; row } ->
      Buffer.add_char buf '\004';
      add_string buf key;
      add_string buf row
  | Row_delete { key } ->
      Buffer.add_char buf '\005';
      add_string buf key
  | Maintain_step { terms } ->
      Buffer.add_char buf '\006';
      Varint.write buf (List.length terms);
      List.iter (add_string buf) terms

let decode_payload s =
  let pos = ref 0 in
  let tag = read_string s pos in
  if !pos >= String.length s then
    Storage_error.error Corrupt "Wal: record missing opcode";
  let opcode = Char.code s.[!pos] in
  incr pos;
  let op =
    match opcode with
    | 0 ->
        let doc = Varint.read s pos in
        Score_update { doc; score = read_float s pos }
    | 1 ->
        let doc = Varint.read s pos in
        let text = read_string s pos in
        Doc_insert { doc; text; score = read_float s pos }
    | 2 -> Doc_delete { doc = Varint.read s pos }
    | 3 ->
        let doc = Varint.read s pos in
        Doc_update { doc; text = read_string s pos }
    | 4 ->
        let key = read_string s pos in
        Row_put { key; row = read_string s pos }
    | 5 -> Row_delete { key = read_string s pos }
    | 6 ->
        let n = Varint.read s pos in
        if n < 0 || n > String.length s then
          Storage_error.error Corrupt "Wal: impossible term count %d" n;
        let terms = ref [] in
        for _ = 1 to n do
          terms := read_string s pos :: !terms
        done;
        Maintain_step { terms = List.rev !terms }
    | k -> Storage_error.error Corrupt "Wal: unknown opcode %d" k
  in
  if !pos <> String.length s then
    Storage_error.error Corrupt "Wal: %d trailing bytes after record"
      (String.length s - !pos);
  { tag; op }

(* -- appending ------------------------------------------------------------ *)

let flush t =
  if Buffer.length t.pending > 0 then begin
    let data = Buffer.contents t.pending in
    Svr_obs.Metrics.observe t.commit_size_h (float_of_int t.pending_records);
    if Svr_obs.Trace.hot () then
      Svr_obs.Trace.event "wal-group-commit"
        ~attrs:
          [ ("records", string_of_int t.pending_records);
            ("bytes", string_of_int (String.length data)) ];
    Buffer.clear t.pending;
    t.pending_records <- 0;
    let len = String.length data in
    let pos = ref 0 in
    while !pos < len do
      let space = t.page_size - t.tail_off in
      let n = min space (len - !pos) in
      Bytes.blit_string data !pos t.tail_bytes t.tail_off n;
      t.tail_off <- t.tail_off + n;
      pos := !pos + n;
      (* the tail page is rewritten on every flush that touches it — the
         read-modify-write a real log pays at its unaligned tail *)
      Disk.write t.disk t.tail_page t.tail_bytes;
      if t.tail_off = t.page_size then begin
        t.tail_page <-
          (if t.tail_page + 1 < Disk.n_pages t.disk then t.tail_page + 1
           else Disk.alloc t.disk);
        t.tail_off <- 0;
        Bytes.fill t.tail_bytes 0 t.page_size '\000'
      end
    done
  end

let append t record =
  let payload = Buffer.create 64 in
  encode_payload payload record;
  let payload = Buffer.contents payload in
  buf_u32 t.pending t.epoch;
  buf_u32 t.pending (String.length payload);
  buf_u32 t.pending (Crc32.string payload);
  Buffer.add_string t.pending payload;
  t.pending_records <- t.pending_records + 1;
  t.backlog <- t.backlog + 1;
  let c = Stats.cell t.stats in
  c.Stats.wal_appends <- c.Stats.wal_appends + 1;
  c.Stats.wal_bytes <- c.Stats.wal_bytes + 12 + String.length payload;
  if Svr_obs.Trace.hot () then
    Svr_obs.Trace.event "wal-append"
      ~attrs:
        [ ("tag", record.tag);
          ("bytes", string_of_int (12 + String.length payload)) ];
  if t.pending_records >= t.group then flush t

let lose_pending t =
  Buffer.clear t.pending;
  t.pending_records <- 0

(* -- truncation ----------------------------------------------------------- *)

let truncate t =
  (* the single header write is the atomic commit point of a checkpoint *)
  lose_pending t;
  t.backlog <- 0;
  t.epoch <- t.epoch + 1;
  write_header t;
  t.tail_page <- 1;
  t.tail_off <- 0;
  Bytes.fill t.tail_bytes 0 t.page_size '\000'

(* -- recovery scan -------------------------------------------------------- *)

(* The scan re-reads everything from the device — the in-memory tail state
   is untrusted after a crash. It rebuilds the tail position at the end of
   the last intact record and returns the surviving records in order. *)

let recover_scan t =
  lose_pending t;
  let header = Bytes.unsafe_to_string (Disk.read_verified t.disk 0) in
  if String.sub header 0 (String.length magic) <> magic then
    Storage_error.error Corrupt "Wal: bad magic on %s" (Disk.name t.disk);
  t.epoch <- get_u32 header (String.length magic);
  let n_data_pages = Disk.n_pages t.disk - 1 in
  let limit = n_data_pages * t.page_size in
  (* one linear pass; pages are fetched lazily and sequentially *)
  let cache_page = ref (-1) and cache = ref "" in
  let byte i =
    let p = i / t.page_size in
    if p <> !cache_page then begin
      cache := Bytes.unsafe_to_string (Disk.read_verified ~hint:`Seq t.disk (p + 1));
      cache_page := p
    end;
    !cache.[i mod t.page_size]
  in
  let read_sub off len =
    String.init len (fun i -> byte (off + i))
  in
  let records = ref [] in
  let pos = ref 0 in
  (try
     let stop = ref false in
     while not !stop do
       if !pos + 12 > limit then stop := true
       else begin
         let frame = read_sub !pos 12 in
         let epoch = get_u32 frame 0 in
         if epoch <> t.epoch then stop := true
         else begin
           let len = get_u32 frame 4 in
           let crc = get_u32 frame 8 in
           if len = 0 || !pos + 12 + len > limit then stop := true
           else begin
             let payload = read_sub (!pos + 12) len in
             if Crc32.string payload <> crc then stop := true
             else begin
               records := decode_payload payload :: !records;
               pos := !pos + 12 + len
             end
           end
         end
       end
     done
   with Storage_error.Error ((Corrupt | Torn), _) ->
     (* a record that frames correctly but decodes badly (or sits on a
        bit-flipped page) is torn too: truncate here *)
     ());
  (* reposition the tail at the truncation point, re-reading the partial
     page so intact earlier records on it survive future appends *)
  t.tail_page <- 1 + (!pos / t.page_size);
  t.tail_off <- !pos mod t.page_size;
  Bytes.fill t.tail_bytes 0 t.page_size '\000';
  if t.tail_page >= Disk.n_pages t.disk then t.tail_page <- Disk.alloc t.disk
  else if t.tail_off > 0 then
    Bytes.blit
      (Disk.read_verified t.disk t.tail_page)
      0 t.tail_bytes 0 t.tail_off;
  let records = List.rev !records in
  t.backlog <- List.length records;
  records
