(** Storage for immutable binary objects laid out on contiguous pages.

    The paper stores long inverted lists "as binary objects in the database
    since they are never updated; they were read in a page at a time during
    query processing" (Section 5.2). A blob here is written once across
    consecutive pages and later consumed through a {!reader} that fetches
    pages on demand — so an early-terminating query only pays for the prefix
    of the list it actually scans, and those reads count as sequential I/O. *)

type t

type id = int

val create : Pager.t -> t

val put : ?replacing:id -> t -> string -> id
(** Write a blob; returns its handle. Bills the payload's exact byte length
    to {!Stats.counters.codec_bytes_written}.

    [replacing old] frees [old] first and reuses its page run in place when
    the new payload needs no more pages — the compaction path's re-encode,
    which would otherwise leak a full run per drain. The old blob must not
    be read afterwards (its pages may now hold the new payload).
    @raise Storage_error.Error [(Missing, _)] when [old] is unknown. *)

val length : t -> id -> int
(** Payload length in bytes.
    @raise Storage_error.Error [(Missing, _)], naming the device and id,
    for an unknown (or freed, or rolled-back) blob. *)

val free : t -> id -> unit
(** Forget a blob. Pages are not reused (reclaimed by offline rebuilds). *)

val read_all : t -> id -> string
(** Fetch the whole blob (page at a time, sequential). *)

val live_bytes : t -> int
(** Total payload bytes of live blobs. *)

val page_bytes : t -> int
(** Device footprint in bytes, i.e. pages ever allocated — what Table 1
    reports as inverted-list size. *)

(** {2 Incremental readers} *)

type reader

val reader : t -> id -> reader
(** A reader positioned at the start of the blob. Pages are fetched lazily
    into a decode buffer that starts small and grows geometrically, so an
    early-terminating scan never allocates the whole list. *)

val blob_length : reader -> int

val ensure : reader -> int -> unit
(** [ensure r upto] fetches pages until at least [upto] bytes of the blob are
    available (clamped to the blob length). Fetches are page-aligned and
    classified sequential except the first after {!reader} or {!skip_to}. *)

val skip_to : reader -> int -> unit
(** [skip_to r off] declares that bytes before [off] will not be read: whole
    pages strictly below [off] are never fetched (skip-data-driven block
    skipping). A no-op when [off] is already fetched; never moves backwards.
    After a skip, the bytes below [off] are unspecified — do not read them. *)

val raw : reader -> string
(** The blob's byte buffer, indexed by blob offset. Only byte ranges made
    available by {!ensure} (and not bypassed by {!skip_to}) hold valid data.
    The returned string aliases the reader's internal buffer and is
    invalidated by the next {!ensure} (the buffer may be reallocated) —
    re-fetch it after each [ensure], treat it as read-only, and do not retain
    it past the reader's lifetime. *)

val fetched_bytes : reader -> int
(** How many bytes have been made available so far. *)

val stats : reader -> Stats.t
(** The I/O counter record of the underlying device — where posting cursors
    account blocks decoded vs skipped. *)

val mark_stable : t -> unit
(** Snapshot the blob directory (ids, runs, lengths) as the checkpointed
    state. Called by [Env.checkpoint] after the store's pages are flushed. *)

val revert_to_stable : t -> unit
(** Restore the directory snapshotted by the last {!mark_stable}: blobs
    written since — including any torn mid-run by a crash — cease to
    exist. *)
