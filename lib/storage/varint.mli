(** LEB128-style variable-length integer encoding.

    Used to delta-compress document ids in inverted-list postings (the paper
    credits the ID method's small lists to differential encoding, Section 5.2).
    Only non-negative integers are supported.

    Decoding is total over arbitrary bytes: it either returns a value [write]
    could have produced or raises {!Storage_error.Error}[ (Corrupt, _)] —
    never an unbounded shift, an out-of-bounds read, or a non-canonical
    (overlong) acceptance. *)

val write : Buffer.t -> int -> unit
(** [write buf n] appends the varint encoding of [n] to [buf].
    @raise Invalid_argument if [n < 0]. *)

val read : string -> int ref -> int
(** [read s pos] decodes a varint at [!pos], advancing [pos] past it.
    @raise Storage_error.Error [(Corrupt, _)] on truncated input, on an
    encoding longer than 63 bits, and on overlong (non-canonical)
    encodings. *)

val size : int -> int
(** [size n] is the number of bytes [write] would emit for [n]. *)
