(** Read-through, write-back page cache over a {!Disk}, sharded for
    multicore query serving.

    Plays the role of BerkeleyDB's buffer pool. Reads served from the pool
    count as cache hits in the shared {!Stats}; misses trigger a physical
    {!Disk.read}; dirty pages are written back on eviction, {!flush} or
    {!drop_cache}.

    The pool is split into independently-locked LRU shards keyed by
    [page_no mod shards]: concurrent {!get}/{!put} calls from different
    domains contend only when they touch the same shard, and {!Disk} reads
    under a shard lock are themselves lock-free. {!flush} and {!drop_cache}
    are quiescent-point operations — do not race them against writers.

    Buffer ownership: {!get} returns a defensive copy on both the hit and
    miss paths — the caller owns it outright and may mutate or retain it
    without corrupting the cached page. To modify a page, build fresh
    contents and {!put} them ([put] installs a new buffer rather than
    mutating in place, so a concurrent reader holding the old bytes keeps a
    consistent snapshot). *)

type t

val default_shards : int
(** Default lock-sharding factor (8). *)

val create : ?pool_pages:int -> ?shards:int -> stats:Stats.t -> Disk.t -> t
(** [pool_pages] is the cache capacity in pages (default 1024 = 4 MiB),
    divided evenly among [shards] (default 8, clamped to [pool_pages] so
    every shard holds at least one page). [stats] should be the same record
    the disk counts physical I/O into, so logical reads, hits and misses
    land in one place.
    @raise Invalid_argument if [shards < 1]. *)

val disk : t -> Disk.t

val alloc : t -> int
(** Allocate a fresh zeroed page; it enters the pool clean. *)

val alloc_run : t -> int -> int
(** Allocate [n] contiguous fresh pages up front and return the first page
    number. Unlike repeated {!alloc} calls, contiguity is guaranteed by the
    device rather than assumed, so blob writes survive any future page-reuse
    policy. The pages stay out of the pool until written.
    @raise Invalid_argument if [n <= 0]. *)

val stats : t -> Stats.t
(** The shared I/O counters this pager reports into. *)

val get : ?hint:[ `Auto | `Seq ] -> t -> int -> Bytes.t
(** Fetch a page, reading through the pool. Misses go through
    {!Disk.read_verified} ([hint] forwarded), so a transient fault is
    retried and a corrupt page raises {!Storage_error.Error} rather than
    decoding garbage. Safe to call concurrently from many domains. See
    ownership note above. *)

val put : t -> int -> Bytes.t -> unit
(** Install new page contents (marked dirty; written back lazily).
    @raise Invalid_argument if the buffer is not exactly one page. *)

val flush : t -> unit
(** Write back all dirty pages (they stay cached), in ascending page order —
    deterministic [page_writes] sequencing across runs regardless of
    hashtable iteration order. *)

val drop_cache : t -> unit
(** [flush] then empty every shard — the "cold cache" state the paper puts
    long inverted lists in before each timed query. *)

val discard : t -> unit
(** Empty every shard {e without} writing anything back: the crash
    semantics of a dying buffer pool. Dirty pages are lost by design —
    recovery reverts the device and replays the WAL instead. *)

val pool_pages : t -> int
(** Configured capacity. *)

val n_shards : t -> int
(** Number of independently-locked LRU shards. *)
