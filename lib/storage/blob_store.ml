type t = {
  pager : Pager.t;
  page_size : int;
  blobs : (int, int * int) Hashtbl.t; (* id -> (first page, byte length) *)
  mutable next_id : int;
  mutable live_bytes : int;
  (* directory snapshot at the last checkpoint — the in-memory state
     recovery restores alongside the device revert, so a blob whose run was
     torn by a crash simply never becomes visible *)
  mutable stable_blobs : (int * (int * int)) list;
  mutable stable_next_id : int;
  mutable stable_live_bytes : int;
}

type id = int

let create pager =
  { pager; page_size = Disk.page_size (Pager.disk pager);
    blobs = Hashtbl.create 1024; next_id = 0; live_bytes = 0;
    stable_blobs = []; stable_next_id = 0; stable_live_bytes = 0 }

let mark_stable t =
  t.stable_blobs <- Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.blobs [];
  t.stable_next_id <- t.next_id;
  t.stable_live_bytes <- t.live_bytes

let revert_to_stable t =
  Hashtbl.reset t.blobs;
  List.iter (fun (id, e) -> Hashtbl.replace t.blobs id e) t.stable_blobs;
  t.next_id <- t.stable_next_id;
  t.live_bytes <- t.stable_live_bytes

let pages_for t len = (len + t.page_size - 1) / t.page_size

let lookup t id =
  match Hashtbl.find_opt t.blobs id with
  | Some entry -> entry
  | None ->
      Storage_error.error Missing "Blob_store(%s): unknown blob id %d (%d live)"
        (Disk.name (Pager.disk t.pager)) id (Hashtbl.length t.blobs)

let length t id = snd (lookup t id)

let free t id =
  let _, len = lookup t id in
  Hashtbl.remove t.blobs id;
  t.live_bytes <- t.live_bytes - len

let put ?replacing t payload =
  let len = String.length payload in
  let n_pages = max 1 (pages_for t len) in
  (* [replacing old] frees [old] and — when the new payload fits within the
     old page run — writes over that run instead of allocating a fresh one,
     so repeated re-encodes of a term (online compaction) stop growing the
     device. Safe under recovery: durable devices journal before-images, so
     a crash before the next checkpoint reverts the overwritten pages right
     along with the directory entry that pointed at them. Any tail pages of
     a strictly larger old run are orphaned, not recycled — bounded by the
     blob's own historical high-water mark, unlike the per-put leak. *)
  let reuse =
    match replacing with
    | None -> None
    | Some old_id ->
        let old_first, old_len = lookup t old_id in
        let old_pages = max 1 (pages_for t old_len) in
        free t old_id;
        if n_pages <= old_pages then Some old_first else None
  in
  let first =
    match reuse with
    | Some first -> first
    | None ->
        (* the run is allocated up front, so contiguity is a guarantee of the
           allocator rather than an assumption about allocation order *)
        Pager.alloc_run t.pager n_pages
  in
  for i = 0 to n_pages - 1 do
    let page = Bytes.make t.page_size '\000' in
    let off = i * t.page_size in
    let chunk = min t.page_size (len - off) in
    if chunk > 0 then Bytes.blit_string payload off page 0 chunk;
    Pager.put t.pager (first + i) page
  done;
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.blobs id (first, len);
  t.live_bytes <- t.live_bytes + len;
  (* exact encoded bytes, headers included: the payload is precisely what a
     posting codec produced, so this is the size-accounting ground truth *)
  let c = Stats.cell (Pager.stats t.pager) in
  c.Stats.codec_bytes_written <- c.Stats.codec_bytes_written + len;
  id

let live_bytes t = t.live_bytes
let page_bytes t = Disk.size_bytes (Pager.disk t.pager)

type reader = {
  store : t;
  first : int;
  len : int;
  mutable buf : Bytes.t; (* grows on demand; index = offset within the blob *)
  mutable fetched : int; (* bytes made available so far *)
  mutable resumed : bool; (* the next page fetch follows a forward skip *)
}

(* initial decode-buffer size: early-terminating queries shouldn't pay a
   whole-list allocation just to peek at the first blocks *)
let initial_buf_pages = 4

let reader t id =
  let first, len = lookup t id in
  { store = t; first; len;
    buf = Bytes.create (min (max len 1) (initial_buf_pages * t.page_size));
    fetched = 0; resumed = false }

let blob_length r = r.len
let fetched_bytes r = r.fetched
let stats r = Pager.stats r.store.pager

let grow r upto =
  let cur = Bytes.length r.buf in
  if cur < upto then begin
    let target = ref (max cur 1) in
    while !target < upto do
      target := !target * 2
    done;
    let bigger = Bytes.create (min !target (max r.len 1)) in
    Bytes.blit r.buf 0 bigger 0 cur;
    r.buf <- bigger
  end

let ensure r upto =
  let upto = min upto r.len in
  if r.fetched < upto then begin
    grow r upto;
    while r.fetched < upto do
      let page_idx = r.fetched / r.store.page_size in
      (* within-blob page runs are readahead-friendly: only the first page of
         a reader (or the first after a skip) pays a seek, even when several
         lists are merged concurrently *)
      let hint = if page_idx = 0 || r.resumed then `Auto else `Seq in
      r.resumed <- false;
      let page = Pager.get ~hint r.store.pager (r.first + page_idx) in
      let off = page_idx * r.store.page_size in
      let chunk = min r.store.page_size (r.len - off) in
      Bytes.blit page 0 r.buf off chunk;
      r.fetched <- off + chunk
    done
  end

let skip_to r off =
  (* page-aligned: whole pages strictly below [off] are never fetched; the
     partially-needed page is re-fetched by the next [ensure] *)
  let floor = off / r.store.page_size * r.store.page_size in
  if floor > r.fetched then begin
    r.fetched <- min floor r.len;
    r.resumed <- true
  end

let raw r = Bytes.unsafe_to_string r.buf

let read_all t id =
  let r = reader t id in
  ensure r r.len;
  Bytes.sub_string r.buf 0 r.len
