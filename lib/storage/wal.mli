(** Write-ahead log of logical update records.

    The durability contract of the update path: every score update, document
    lifecycle event and relational row mutation is appended here {e before}
    it is applied to any B+-tree or short list, so [Env.recover] can rebuild
    the post-checkpoint state by replaying the log against the reverted
    (checkpointed) storage through the very same update code.

    Records are framed [epoch ∥ length ∥ CRC32(payload) ∥ payload] on a
    dedicated unjournaled device; the header page carries the current epoch,
    bumped by {!truncate} with one atomic page write (the checkpoint commit
    point). {!recover_scan} replays from the device and stops at the first
    torn record: wrong epoch, impossible length, payload checksum mismatch,
    or undecodable payload.

    Appends are group-committed: records buffer in memory and are forced to
    the device every [group] records or on {!flush}. A crash loses the
    unforced tail — those updates simply never happened as far as recovery
    is concerned, which is the usual group-commit durability trade. *)

type op =
  | Score_update of { doc : int; score : float }
  | Doc_insert of { doc : int; text : string; score : float }
  | Doc_delete of { doc : int }
  | Doc_update of { doc : int; text : string }
  | Row_put of { key : string; row : string }  (** encoded pk ∥ encoded row *)
  | Row_delete of { key : string }
  | Maintain_step of { terms : string list }
      (** one bounded online-compaction step: drain these terms' short-list
          postings into their long lists. Logged {e before} the drain like
          any update, so a crash mid-step replays the whole step against the
          reverted state — the drain is a deterministic function of the
          state left by the preceding records. *)

type record = { tag : string; op : op }
(** [tag] routes the record at replay time: the text-index name for
    [Score_update]/[Doc_*] ops, ["table:<name>"] for [Row_*] ops. *)

type t

val create : ?group:int -> Disk.t -> t
(** Initialize a log on a {e fresh} device ([group] defaults to 32 records
    per commit). The device must not be journaled — the log must survive
    [revert_to_stable] of the data devices. *)

val append : t -> record -> unit
(** Buffer a record (counted in [wal_appends]/[wal_bytes]); forces a
    {!flush} when the pending batch reaches the group size. *)

val flush : t -> unit
(** Force all pending records to the device.
    @raise Fault.Crash if the fault clock trips mid-write — the log then
    ends in a torn record. *)

val truncate : t -> unit
(** Discard the whole log by bumping the epoch (one atomic header write).
    Call only when a checkpoint has made every logged effect stable. *)

val lose_pending : t -> unit
(** Drop buffered-but-unforced records — what a crash does to them. *)

val recover_scan : t -> record list
(** Re-read the log from the device, trusting nothing in memory: returns
    the records of the current epoch up to the first torn record, in append
    order, and repositions the append tail at the truncation point.
    @raise Storage_error.Error [(Corrupt, _)] only for an unreadable header
    (torn or corrupt records merely end the scan). *)

val group_size : t -> int

val device : t -> Disk.t

val backlog : t -> int
(** Records appended since the last {!truncate} — the checkpoint debt a
    recovery would replay, also exported as the
    [svr_wal_backlog_records{device}] gauge that the WAL-staleness SLO
    watches. Reset by {!truncate}; recomputed by {!recover_scan}. *)
