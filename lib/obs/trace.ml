(* Spans form a per-domain stack rooted in domain-local state, so deep
   hooks (a block decode five layers below the query loop) attach to the
   right parent without any plumbing through intermediate signatures.
   Completed spans are pushed into a per-domain ring buffer registered
   under a global mutex, mirroring the Stats per-domain-cell pattern: the
   hot path never locks, aggregation walks the registry at quiescence.

   The off path: [sampling = 0] keeps [active] false, [root]/[push] return
   the physically-unique [none] sentinel after one atomic load, and every
   other entry point no-ops on [none]. Nothing allocates. *)

type span = {
  s_trace : int;
  s_id : int;
  s_name : string;
  s_parent : span; (* physical; [none] for a trace root *)
  s_parent_id : int;
  s_domain : int;
  s_t0_wall : float;
  s_t0_sim : float;
  mutable s_attrs : (string * string) list;
}

let rec none =
  { s_trace = 0; s_id = 0; s_name = ""; s_parent = none; s_parent_id = 0;
    s_domain = 0; s_t0_wall = 0.; s_t0_sim = 0.; s_attrs = [] }

type event = {
  e_trace : int;
  e_span : int;
  e_parent : int;
  e_name : string;
  e_domain : int;
  e_start_wall : float;
  e_wall_ms : float;
  e_sim_ms : float;
  e_attrs : (string * string) list;
}

let ring_capacity = 8192

type ring = {
  r_domain : int;
  r_buf : event option array;
  mutable r_pos : int; (* next write slot *)
  mutable r_count : int; (* total events ever written *)
}

type ctx = { mutable c_current : span; c_ring : ring }

(* -- global state --------------------------------------------------------- *)

let sampling_a = Atomic.make 0
let force_a = Atomic.make false
let open_roots = Atomic.make 0 (* root traces currently in flight *)

(* sampling > 0 || force pending || a trace still open: a forced trace must
   keep the hot-path gate up after [sampled] consumes the force flag, or
   every span below the root would see "tracing off" and vanish *)
let active_a = Atomic.make false
let sample_ctr = Atomic.make 0
let trace_ctr = Atomic.make 0
let span_ctr = Atomic.make 0
let sim_clock = ref (fun () -> 0.)
let root_hook : (event -> unit) option ref = ref None

let registry_mu = Mutex.create ()
let rings : ring list ref = ref []

let ctx_key =
  Domain.DLS.new_key (fun () ->
      let ring =
        { r_domain = (Domain.self () :> int);
          r_buf = Array.make ring_capacity None; r_pos = 0; r_count = 0 }
      in
      Mutex.lock registry_mu;
      rings := ring :: !rings;
      Mutex.unlock registry_mu;
      { c_current = none; c_ring = ring })

let ctx () = Domain.DLS.get ctx_key

let refresh_active () =
  Atomic.set active_a
    (Atomic.get sampling_a > 0 || Atomic.get force_a
    || Atomic.get open_roots > 0)

let set_sampling n =
  Atomic.set sampling_a (max 0 n);
  refresh_active ()

let sampling () = Atomic.get sampling_a

(* CI opt-in: run any binary with every n-th operation traced, exercising
   the instrumented paths without touching the code under test *)
let () =
  match Sys.getenv_opt "SVR_TRACE_SAMPLE" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> set_sampling n
      | _ -> ())
  | None -> ()

let force_next () =
  Atomic.set force_a true;
  refresh_active ()

let set_sim_clock f = sim_clock := f
let on_root_finish f = root_hook := Some f
let is_on s = s != none
let hot () = Atomic.get active_a && is_on (ctx ()).c_current
let current () = (ctx ()).c_current
let last_trace_id () = Atomic.get trace_ctr
let trace_id s = s.s_trace

(* -- span lifecycle ------------------------------------------------------- *)

let open_span c ~trace ~parent name =
  let s =
    { s_trace = trace; s_id = Atomic.fetch_and_add span_ctr 1 + 1; s_name = name;
      s_parent = parent; s_parent_id = parent.s_id;
      s_domain = c.c_ring.r_domain; s_t0_wall = Unix.gettimeofday ();
      s_t0_sim = !sim_clock (); s_attrs = [] }
  in
  c.c_current <- s;
  s

let sampled () =
  if Atomic.get force_a && Atomic.compare_and_set force_a true false then begin
    refresh_active ();
    true
  end
  else
    match Atomic.get sampling_a with
    | 0 -> false
    | 1 -> true
    | n -> Atomic.fetch_and_add sample_ctr 1 mod n = 0

let root name =
  if not (Atomic.get active_a) then none
  else
    let c = ctx () in
    if is_on c.c_current then
      (* already inside a trace: nest instead of starting a second one *)
      open_span c ~trace:c.c_current.s_trace ~parent:c.c_current name
    else if sampled () then begin
      Atomic.incr open_roots;
      refresh_active ();
      let trace = Atomic.fetch_and_add trace_ctr 1 + 1 in
      open_span c ~trace ~parent:none name
    end
    else none

let push name =
  if not (Atomic.get active_a) then none
  else
    let c = ctx () in
    if is_on c.c_current then
      open_span c ~trace:c.c_current.s_trace ~parent:c.c_current name
    else none

(* overwriting a retained event means some trace just lost a span — its
   [.explain] tree will render truncated, so make the loss countable *)
let dropped_c =
  lazy
    (Metrics.counter
       ~help:"completed spans overwritten by ring wrap before retrieval"
       "svr_trace_dropped_spans_total")

let record ring ev =
  (match ring.r_buf.(ring.r_pos) with
  | Some _ -> Metrics.inc (Lazy.force dropped_c)
  | None -> ());
  ring.r_buf.(ring.r_pos) <- Some ev;
  ring.r_pos <- (ring.r_pos + 1) mod ring_capacity;
  ring.r_count <- ring.r_count + 1

let pop s =
  if is_on s then begin
    let c = ctx () in
    let ev =
      { e_trace = s.s_trace; e_span = s.s_id; e_parent = s.s_parent_id;
        e_name = s.s_name; e_domain = s.s_domain;
        e_start_wall = s.s_t0_wall;
        e_wall_ms = (Unix.gettimeofday () -. s.s_t0_wall) *. 1000.;
        e_sim_ms = !sim_clock () -. s.s_t0_sim;
        e_attrs = List.rev s.s_attrs }
    in
    record c.c_ring ev;
    if c.c_current == s then c.c_current <- s.s_parent;
    if not (is_on s.s_parent) then begin
      Atomic.decr open_roots;
      refresh_active ();
      match !root_hook with None -> () | Some f -> f ev
    end
  end

let event ?(attrs = []) name =
  let c = ctx () in
  let cur = c.c_current in
  if is_on cur then
    (* no clock read: instantaneous events report zero duration and inherit
       the parent's start for ordering, keeping the per-block cost at one
       counter bump, one record and one ring store *)
    record c.c_ring
      { e_trace = cur.s_trace; e_span = Atomic.fetch_and_add span_ctr 1 + 1;
        e_parent = cur.s_id; e_name = name; e_domain = c.c_ring.r_domain;
        e_start_wall = cur.s_t0_wall; e_wall_ms = 0.; e_sim_ms = 0.;
        e_attrs = attrs }

let annotate s key value =
  if is_on s then s.s_attrs <- (key, value) :: s.s_attrs

let has_attr s key = is_on s && List.mem_assoc key s.s_attrs

let annotate_f s key value =
  if is_on s then s.s_attrs <- (key, value ()) :: s.s_attrs

(* -- inspection ----------------------------------------------------------- *)

let fold_rings f acc =
  Mutex.lock registry_mu;
  let rs = !rings in
  Mutex.unlock registry_mu;
  List.fold_left
    (fun acc r ->
      let acc = ref acc in
      let n = min r.r_count ring_capacity in
      for i = 0 to n - 1 do
        match r.r_buf.((r.r_pos - n + i + (2 * ring_capacity)) mod ring_capacity)
        with
        | Some ev -> acc := f !acc ev
        | None -> ()
      done;
      !acc)
    acc rs

let trace_events trace =
  fold_rings (fun acc ev -> if ev.e_trace = trace then ev :: acc else acc) []
  |> List.sort (fun a b -> compare a.e_span b.e_span)

let recent_events ?(n = 64) () =
  fold_rings (fun acc ev -> ev :: acc) []
  |> List.sort (fun a b -> compare b.e_span a.e_span)
  |> List.filteri (fun i _ -> i < n)
  |> List.rev

let clear () =
  Mutex.lock registry_mu;
  List.iter
    (fun r ->
      Array.fill r.r_buf 0 ring_capacity None;
      r.r_pos <- 0;
      r.r_count <- 0)
    !rings;
  Mutex.unlock registry_mu
