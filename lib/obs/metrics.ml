(* Each counter/histogram owns a DLS key plus a registry of the cells it
   handed out, like Stats.t: increments touch domain-private records,
   snapshots sum them under the collector's mutex. The global registry
   maps (name, labels) to collectors so independently-created components
   (pagers, WALs, indexes across environments) share series. *)

let n_buckets = 41 (* 40 finite log2 buckets + overflow *)
let default_base = 0.001

type counter_cell = { mutable cc_n : int }

type counter = {
  c_mu : Mutex.t;
  c_cells : counter_cell list ref;
  c_key : counter_cell Domain.DLS.key;
}

type hist_cell = {
  hc_buckets : int array; (* n_buckets *)
  mutable hc_sum : float;
  mutable hc_count : int;
}

type histogram = {
  h_base : float;
  h_mu : Mutex.t;
  h_cells : hist_cell list ref;
  h_key : hist_cell Domain.DLS.key;
}

type collector =
  | C of counter
  | G of (unit -> float)
  | H of histogram

type entry = { help : string; coll : collector }

let registry_mu = Mutex.create ()

let registry : (string * (string * string) list, entry) Hashtbl.t =
  Hashtbl.create 32

let with_registry f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

let register ~help ~labels name make same =
  with_registry (fun () ->
      match Hashtbl.find_opt registry (name, labels) with
      | Some { coll; _ } -> (
          match same coll with
          | Some c -> c
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %s re-registered with another type"
                   name))
      | None ->
          let c = make () in
          Hashtbl.replace registry (name, labels) { help; coll = c };
          c)

(* -- counters ------------------------------------------------------------- *)

let make_counter () =
  let mu = Mutex.create () in
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let cell = { cc_n = 0 } in
        Mutex.lock mu;
        cells := cell :: !cells;
        Mutex.unlock mu;
        cell)
  in
  { c_mu = mu; c_cells = cells; c_key = key }

let counter ?(help = "") ?(labels = []) name =
  match
    register ~help ~labels name
      (fun () -> C (make_counter ()))
      (function C c -> Some (C c) | _ -> None)
  with
  | C c -> c
  | _ -> assert false

let add c n =
  let cell = Domain.DLS.get c.c_key in
  cell.cc_n <- cell.cc_n + n

let inc c = add c 1

let counter_value c =
  Mutex.lock c.c_mu;
  let v = List.fold_left (fun acc cell -> acc + cell.cc_n) 0 !(c.c_cells) in
  Mutex.unlock c.c_mu;
  v

(* -- gauges --------------------------------------------------------------- *)

let gauge ?(help = "") ?(labels = []) name f =
  with_registry (fun () ->
      Hashtbl.replace registry (name, labels) { help; coll = G f })

(* -- histograms ----------------------------------------------------------- *)

let make_histogram base =
  let mu = Mutex.create () in
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let cell =
          { hc_buckets = Array.make n_buckets 0; hc_sum = 0.; hc_count = 0 }
        in
        Mutex.lock mu;
        cells := cell :: !cells;
        Mutex.unlock mu;
        cell)
  in
  { h_base = base; h_mu = mu; h_cells = cells; h_key = key }

let histogram ?(help = "") ?(labels = []) ?(base = default_base) name =
  match
    register ~help ~labels name
      (fun () -> H (make_histogram base))
      (function H h -> Some (H h) | _ -> None)
  with
  | H h -> h
  | _ -> assert false

(* smallest i with v <= base * 2^i, clamped into [0, n_buckets-1] *)
let bucket_of h v =
  if not (v > h.h_base) then 0
  else begin
    let m, e = Float.frexp (v /. h.h_base) in
    (* v/base = m * 2^e with m in [0.5, 1): log2 = e iff m = 0.5 exactly *)
    let i = if m = 0.5 then e - 1 else e in
    if i >= n_buckets then n_buckets - 1 else i
  end

let observe h v =
  let cell = Domain.DLS.get h.h_key in
  let i = bucket_of h v in
  cell.hc_buckets.(i) <- cell.hc_buckets.(i) + 1;
  cell.hc_sum <- cell.hc_sum +. v;
  cell.hc_count <- cell.hc_count + 1

let hist_agg h =
  let buckets = Array.make n_buckets 0 in
  let sum = ref 0. and count = ref 0 in
  Mutex.lock h.h_mu;
  List.iter
    (fun cell ->
      Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n) cell.hc_buckets;
      sum := !sum +. cell.hc_sum;
      count := !count + cell.hc_count)
    !(h.h_cells);
  Mutex.unlock h.h_mu;
  (buckets, !sum, !count)

let hist_count h =
  let _, _, count = hist_agg h in
  count

let hist_sum h =
  let _, sum, _ = hist_agg h in
  sum

let bound h i =
  if i = n_buckets - 1 then infinity else h.h_base *. (2. ** float_of_int i)

(* -- quantiles ------------------------------------------------------------ *)

(* Quantile estimate from non-cumulative (upper-bound, count) pairs in
   ascending bound order, linearly interpolated inside the containing
   bucket. Bucket lower bounds follow the log2 layout: the first bucket
   covers (0, base], every later one (le/2, le]. A quantile landing in
   the +inf overflow bucket reports that bucket's lower bound — the
   tightest claim the data supports. nan when the histogram is empty. *)
let quantile_of ~base buckets count q =
  if count <= 0 then Float.nan
  else begin
    let target = q *. float_of_int count in
    let rec walk cum = function
      | [] -> Float.nan
      | (le, n) :: rest ->
          let cum' = cum +. float_of_int n in
          if cum' >= target && n > 0 then
            if le = infinity then base *. (2. ** float_of_int (n_buckets - 2))
            else
              let lo = if le <= base then 0. else le /. 2. in
              lo +. ((le -. lo) *. (target -. cum) /. float_of_int n)
          else walk cum' rest
    in
    walk 0. buckets
  end

let hist_quantile h q =
  let buckets, _, count = hist_agg h in
  let bs = ref [] in
  for i = n_buckets - 1 downto 0 do
    if buckets.(i) <> 0 then bs := (bound h i, buckets.(i)) :: !bs
  done;
  quantile_of ~base:h.h_base !bs count q

(* -- export --------------------------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of
      { base : float; buckets : (float * int) list; sum : float; count : int }

let snapshot () =
  let entries =
    with_registry (fun () ->
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) registry [])
  in
  entries
  |> List.map (fun (k, { coll; _ }) ->
         let v =
           match coll with
           | C c -> Counter (counter_value c)
           | G f -> Gauge (f ())
           | H h ->
               let buckets, sum, count = hist_agg h in
               let bs = ref [] in
               for i = n_buckets - 1 downto 0 do
                 if buckets.(i) <> 0 then bs := (bound h i, buckets.(i)) :: !bs
               done;
               Histogram { base = h.h_base; buckets = !bs; sum; count }
         in
         (k, v))
  |> List.sort compare

let reset () =
  let entries =
    with_registry (fun () ->
        Hashtbl.fold (fun _ e acc -> e.coll :: acc) registry [])
  in
  List.iter
    (function
      | C c ->
          Mutex.lock c.c_mu;
          List.iter (fun cell -> cell.cc_n <- 0) !(c.c_cells);
          Mutex.unlock c.c_mu
      | G _ -> ()
      | H h ->
          Mutex.lock h.h_mu;
          List.iter
            (fun cell ->
              Array.fill cell.hc_buckets 0 n_buckets 0;
              cell.hc_sum <- 0.;
              cell.hc_count <- 0)
            !(h.h_cells);
          Mutex.unlock h.h_mu)
    entries

(* the percentile estimates every histogram exports alongside its buckets *)
let export_quantiles = [ 0.5; 0.9; 0.99 ]

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i ((name, labels), v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  {";
      Buffer.add_string b (Printf.sprintf "\"name\":\"%s\"" (json_escape name));
      if labels <> [] then begin
        Buffer.add_string b ",\"labels\":{";
        List.iteri
          (fun j (k, lv) ->
            if j > 0 then Buffer.add_string b ",";
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape lv)))
          labels;
        Buffer.add_string b "}"
      end;
      (match v with
      | Counter n ->
          Buffer.add_string b
            (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" n)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf ",\"type\":\"gauge\",\"value\":%s"
               (if Float.is_nan g then "null" else float_str g))
      | Histogram { base; buckets; sum; count } ->
          Buffer.add_string b
            (Printf.sprintf ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s"
               count (float_str sum));
          Buffer.add_string b ",\"buckets\":[";
          List.iteri
            (fun j (le, n) ->
              if j > 0 then Buffer.add_string b ",";
              Buffer.add_string b
                (Printf.sprintf "[%s,%d]"
                   (if le = infinity then "\"inf\"" else float_str le)
                   n))
            buckets;
          Buffer.add_string b "]";
          if count > 0 then begin
            Buffer.add_string b ",\"quantiles\":{";
            List.iteri
              (fun j q ->
                if j > 0 then Buffer.add_string b ",";
                Buffer.add_string b
                  (Printf.sprintf "\"%g\":%s" q
                     (float_str (quantile_of ~base buckets count q))))
              export_quantiles;
            Buffer.add_string b "}"
          end);
      Buffer.add_string b "}")
    (snapshot ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let prom_labels_le labels le =
  let le_s = if le = infinity then "+Inf" else float_str le in
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels
      @ [ Printf.sprintf "le=%S" le_s ])
  ^ "}"

let to_prometheus () =
  let b = Buffer.create 1024 in
  let seen_type = Hashtbl.create 16 in
  let header name kind =
    if not (Hashtbl.mem seen_type name) then begin
      Hashtbl.add seen_type name ();
      let help =
        with_registry (fun () ->
            Hashtbl.fold
              (fun (n, _) e acc -> if n = name && e.help <> "" then e.help else acc)
              registry "")
      in
      if help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun ((name, labels), v) ->
      match v with
      | Counter n ->
          header name "counter";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" name (prom_labels labels) n)
      | Gauge g ->
          header name "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" name (prom_labels labels)
               (if Float.is_nan g then "NaN" else float_str g))
      | Histogram { base; buckets; sum; count } ->
          header name "histogram";
          let cum = ref 0 in
          List.iter
            (fun (le, n) ->
              cum := !cum + n;
              if le <> infinity then
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (prom_labels_le labels le) !cum))
            buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" name
               (prom_labels_le labels infinity) count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
               (float_str sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels) count);
          if count > 0 then begin
            let qname = name ^ "_quantile" in
            header qname "gauge";
            List.iter
              (fun q ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %s\n" qname
                     (prom_labels (labels @ [ ("q", Printf.sprintf "%g" q) ]))
                     (float_str (quantile_of ~base buckets count q))))
              export_quantiles
          end)
    (snapshot ());
  Buffer.contents b
