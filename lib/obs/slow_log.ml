type entry = {
  sl_trace : int;
  sl_root : Trace.event;
  sl_events : Trace.event list;
  sl_reason : string option;
      (* set on requests that never ran to completion: the admission or
         budget verdict that cut them off *)
}

let capacity = 32
let mu = Mutex.create ()
let threshold = Atomic.make 100.0
let log : entry list ref = ref [] (* most recent first, <= capacity *)
let installed = Atomic.make false

let push e =
  Mutex.lock mu;
  log := e :: List.filteri (fun i _ -> i < capacity - 1) !log;
  Mutex.unlock mu

let retain root =
  let events = Trace.trace_events root.Trace.e_trace in
  push
    { sl_trace = root.Trace.e_trace; sl_root = root; sl_events = events;
      sl_reason = None }

(* Shed and timed-out requests leave no (or a truncated) span tree — the
   interesting fact is the verdict, not the work. A note is a synthetic
   single-event entry tagged with that verdict, so [.slow] answers "why
   did this request never run" alongside "why was that one slow". *)
let note ?(attrs = []) ~kind ~reason () =
  push
    { sl_trace = 0;
      sl_root =
        { Trace.e_trace = 0; e_span = 0; e_parent = 0; e_name = kind;
          e_domain = (Domain.self () :> int); e_start_wall = Clock.now_s ();
          e_wall_ms = 0.; e_sim_ms = 0.; e_attrs = attrs };
      sl_events = []; sl_reason = Some reason }

let install () =
  if Atomic.compare_and_set installed false true then
    Trace.on_root_finish (fun root ->
        if root.Trace.e_wall_ms >= Atomic.get threshold then retain root)

let set_threshold_ms ms =
  Atomic.set threshold ms;
  install ()

let threshold_ms () = Atomic.get threshold

let entries () =
  install ();
  Mutex.lock mu;
  let l = !log in
  Mutex.unlock mu;
  l

let clear () =
  Mutex.lock mu;
  log := [];
  Mutex.unlock mu

(* -- rendering ------------------------------------------------------------ *)

let pp_attrs attrs =
  match
    List.filter (fun (k, _) -> k <> "stop") attrs
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
  with
  | [] -> ""
  | kvs -> "  [" ^ String.concat " " kvs ^ "]"

let render events =
  let b = Buffer.create 512 in
  (* children grouped by parent span id; events arrive sorted by span id,
     so each child list stays in creation order *)
  let children = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let siblings =
        Option.value ~default:[] (Hashtbl.find_opt children ev.Trace.e_parent)
      in
      Hashtbl.replace children ev.Trace.e_parent (siblings @ [ ev ]))
    events;
  let leaf ev = not (Hashtbl.mem children ev.Trace.e_span) in
  let rec walk depth ev =
    let indent = String.make (2 * depth) ' ' in
    Buffer.add_string b
      (Printf.sprintf "%s%-18s %8.3f ms wall  %8.2f ms sim%s\n" indent
         ev.Trace.e_name ev.Trace.e_wall_ms ev.Trace.e_sim_ms
         (pp_attrs ev.Trace.e_attrs));
    (match List.assoc_opt "stop" ev.Trace.e_attrs with
    | Some why -> Buffer.add_string b (Printf.sprintf "%s  ~ %s\n" indent why)
    | None -> ());
    walk_children (depth + 1)
      (Option.value ~default:[] (Hashtbl.find_opt children ev.Trace.e_span))
  (* runs of >= 4 same-named childless siblings (block decodes, WAL appends)
     collapse to one "×N" line — a cold query emits hundreds of them *)
  and walk_children depth = function
    | [] -> ()
    | ev :: _ as kids when leaf ev ->
        let rec run n wall sim = function
          | e :: rest when leaf e && String.equal e.Trace.e_name ev.Trace.e_name
            ->
              run (n + 1) (wall +. e.Trace.e_wall_ms) (sim +. e.Trace.e_sim_ms)
                rest
          | rest -> (n, wall, sim, rest)
        in
        let n, wall, sim, rest = run 0 0.0 0.0 kids in
        if n >= 4 then
          Buffer.add_string b
            (Printf.sprintf "%s%-18s %8.3f ms wall  %8.2f ms sim  [x%d]\n"
               (String.make (2 * depth) ' ')
               ev.Trace.e_name wall sim n)
        else
          List.iteri (fun i e -> if i < n then walk depth e) kids;
        walk_children depth rest
    | ev :: rest ->
        walk depth ev;
        walk_children depth rest
  in
  (* roots: events whose parent is not among the events *)
  let ids = Hashtbl.create 16 in
  List.iter (fun ev -> Hashtbl.replace ids ev.Trace.e_span ()) events;
  List.iter
    (fun ev -> if not (Hashtbl.mem ids ev.Trace.e_parent) then walk 0 ev)
    events;
  Buffer.contents b

let render_trace trace =
  match Trace.trace_events trace with
  | [] -> Printf.sprintf "trace %d: no events retained\n" trace
  | events -> render events
