(* The health state machine: named sources anywhere in the system (breaker
   state in storage, queue occupancy in serving, burn-rate alerts, index
   maintenance debt) register callbacks here, and [evaluate] folds their
   reports into one ordered state. Callbacks keep the dependency graph
   acyclic — this module sits in the leaf library and knows nothing about
   the layers that feed it.

   Hysteresis is asymmetric on purpose: a worse raw state is adopted
   immediately (an overloaded system must tighten admission now), but
   recovery requires [recover_after] consecutive better evaluations —
   otherwise a queue hovering at its threshold would flap admission tiers
   on every tick. *)

type report = Ok | Warn of string | Fail of string
type state = Healthy | Degraded of string list | Critical

let severity = function Healthy -> 0 | Degraded _ -> 1 | Critical -> 2

let to_string = function
  | Healthy -> "healthy"
  | Degraded rs -> "degraded (" ^ String.concat "; " rs ^ ")"
  | Critical -> "critical"

let mu = Mutex.create ()
let sources : (string * (unit -> report)) list ref = ref []
let current_s = ref Healthy
let better_streak = ref 0
let recover_after = ref 3
let gauge_on = ref false

let transitions_c to_ =
  Metrics.counter
    ~labels:[ ("to", to_) ]
    ~help:"health state transitions" "svr_health_transitions_total"

let with_mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let ensure_gauge () =
  if not !gauge_on then begin
    gauge_on := true;
    Metrics.gauge ~help:"current health state (0 healthy, 1 degraded, 2 critical)"
      "svr_health_state" (fun () -> float_of_int (severity !current_s))
  end

let register_source name f =
  with_mu (fun () ->
      ensure_gauge ();
      sources := (name, f) :: List.remove_assoc name !sources)

let unregister_source name =
  with_mu (fun () -> sources := List.remove_assoc name !sources)

let set_recover_after n = with_mu (fun () -> recover_after := max 1 n)

let raw_state reports =
  let fails =
    List.filter_map (function Fail r -> Some r | _ -> None) reports
  in
  let warns =
    List.filter_map (function Warn r -> Some r | _ -> None) reports
  in
  if fails <> [] then Critical
  else if warns <> [] then Degraded warns
  else Healthy

let evaluate () =
  let srcs = with_mu (fun () -> !sources) in
  (* run callbacks outside the lock: a source may read a mutex-protected
     queue or breaker of its own *)
  let reports =
    List.map
      (fun (name, f) ->
        match f () with
        | r -> r
        | exception _ -> Fail (name ^ ": source raised"))
      srcs
  in
  let raw = raw_state reports in
  with_mu (fun () ->
      let cur = !current_s in
      let adopt s =
        if severity s <> severity cur then
          Metrics.inc
            (transitions_c
               (match s with
               | Healthy -> "healthy"
               | Degraded _ -> "degraded"
               | Critical -> "critical"));
        current_s := s
      in
      if severity raw > severity cur then begin
        better_streak := 0;
        adopt raw
      end
      else if severity raw = severity cur then begin
        better_streak := 0;
        (* same tier: refresh the reasons without a transition *)
        current_s := raw
      end
      else begin
        incr better_streak;
        if !better_streak >= !recover_after then begin
          better_streak := 0;
          adopt raw
        end
      end;
      !current_s)

let current () = with_mu (fun () -> !current_s)

let reset () =
  with_mu (fun () ->
      sources := [];
      current_s := Healthy;
      better_streak := 0;
      recover_after := 3)
