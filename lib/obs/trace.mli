(** Query-lifecycle span tracing, safe under domains and cheap when off.

    A {e trace} is the tree of spans produced by one sampled operation — a
    top-k query, an update, a checkpoint or a recovery. Spans carry two
    clocks: wall time ({!Unix.gettimeofday}) and the simulated-ms clock the
    storage layer derives from its I/O cost model (injected with
    {!set_sim_clock}, so this module depends on nothing above it).

    The disabled path is the design constraint. Every entry point first
    checks a single atomic; an unsampled operation receives the {!none}
    sentinel span, and every operation on {!none} is a no-op that allocates
    nothing. Hot-loop hooks (per-block decode events) must guard with
    {!hot} before building attribute lists, so a query path with tracing
    off performs one atomic load per hook site and nothing else.

    Completed spans land in {e per-domain ring buffers} (registered like
    [Stats] cells), so recording never takes a lock; {!trace_events} and
    {!recent_events} walk the registry at quiescent points. *)

type span
(** An open span. Physically compare against {!none} via {!is_on}. *)

val none : span
(** The sentinel returned when tracing is off or the operation unsampled. *)

type event = {
  e_trace : int;  (** trace id, unique per sampled root operation *)
  e_span : int;  (** span id, globally increasing in creation order *)
  e_parent : int;  (** parent span id, [0] for a trace root *)
  e_name : string;
  e_domain : int;  (** domain the span ran on *)
  e_start_wall : float;  (** [Unix.gettimeofday] at span start *)
  e_wall_ms : float;  (** wall-clock duration *)
  e_sim_ms : float;  (** simulated-ms duration from the injected clock *)
  e_attrs : (string * string) list;  (** key/value annotations *)
}
(** A completed span, as stored in the ring buffers. *)

(** {2 Sampling} *)

val set_sampling : int -> unit
(** [0] disables tracing entirely (the default); [1] traces every root
    operation; [n] traces every [n]-th. The [SVR_TRACE_SAMPLE] environment
    variable, when a positive integer, sets the initial rate — CI runs the
    whole test suite under [SVR_TRACE_SAMPLE=1]. *)

val sampling : unit -> int

val force_next : unit -> unit
(** Trace the next root operation regardless of the sampling rate — the
    [.explain] hook. Consumed by the first {!root} call on any domain. *)

val set_sim_clock : (unit -> float) -> unit
(** Install the simulated-ms clock. The storage environment wires this to
    [Stats.simulated_ms] over the calling domain's counter cell, so span
    sim durations are exact per-domain I/O costs. Default: constant 0. *)

(** {2 Spans} *)

val root : string -> span
(** Start a root-eligible span. If a trace is already active on this domain
    the span joins it as a child (an [Engine] statement wrapping an [Index]
    query yields one trace); otherwise a new trace starts iff sampling or
    {!force_next} selects it. Returns {!none} when not selected. *)

val push : string -> span
(** Start a child of the domain's current span; {!none} when no trace is
    active. Never starts a trace. *)

val pop : span -> unit
(** Finish a span: record its event in the domain's ring and restore its
    parent as current. No-op on {!none}. Pop in LIFO order. *)

val is_on : span -> bool
(** [span != none] — guard for any work done only to annotate. *)

val hot : unit -> bool
(** One atomic load, then: is a trace active on this domain right now?
    The guard for hot-loop hooks, false on the fast path when disabled. *)

val event : ?attrs:(string * string) list -> string -> unit
(** Record an instantaneous (zero-duration) child of the current span.
    No-op when no trace is active — but callers in hot loops should guard
    with {!hot} before constructing [attrs]. *)

val annotate : span -> string -> string -> unit
(** Attach [key = value] to an open span. No-op on {!none}. *)

val annotate_f : span -> string -> (unit -> string) -> unit
(** Lazy {!annotate}: the value thunk runs only if the span is live. *)

val has_attr : span -> string -> bool
(** Was [key] already attached to this open span? [false] on {!none}. *)

(** {2 Inspection} *)

val current : unit -> span
(** The calling domain's innermost open span ({!none} if untraced). *)

val trace_id : span -> int
(** The span's trace id, [0] on {!none} — the correlation key the event
    log stores so [.events] rows link to [.explain] trees. *)

val last_trace_id : unit -> int
(** Id of the most recently started trace, [0] if none ever started. *)

val trace_events : int -> event list
(** All retained events of one trace, across every domain's ring, sorted
    by span id (creation order). Call at quiescent points. *)

val recent_events : ?n:int -> unit -> event list
(** The most recent [n] (default 64) completed spans across all rings. *)

val on_root_finish : (event -> unit) -> unit
(** Install a hook called with the root event each time a trace completes
    (the slow-log retention point). One hook; later calls replace it. *)

val ring_capacity : int
(** Completed spans retained per domain. Oldest overwritten first; each
    overwrite of a still-retained event increments the
    [svr_trace_dropped_spans_total] counter, so truncated [.explain]
    trees are detectable from [.metrics]. *)

val clear : unit -> unit
(** Empty every ring buffer. Call only at quiescent points. *)
