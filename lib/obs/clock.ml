(* The one wall-clock source for the observability layer (and for layers
   below it that do not link unix themselves). Also carries the global
   simulated-ms source: unlike [Trace.set_sim_clock] (per-domain cost
   cells, exact span durations), this one must be callable from any
   domain — the storage environment wires it to the snapshot-sum over
   every domain's counters, so it is monotonic process-wide. Tests
   inject their own source to drive deterministic window sequences. *)

let now_s () = Unix.gettimeofday ()
let now_ms () = Unix.gettimeofday () *. 1000.

let sim_source = ref (fun () -> 0.)
let set_sim_source f = sim_source := f
let sim_ms () = !sim_source ()
