(* The one wall-clock source for the observability layer (and for layers
   below it that do not link unix themselves). *)

let now_s () = Unix.gettimeofday ()
let now_ms () = Unix.gettimeofday () *. 1000.
