(** Counters, gauges and log-bucketed histograms with per-domain cells.

    Collectors live in a process-global registry keyed by (name, labels).
    Counters and histograms store their values in {e per-domain cells}
    (domain-local records registered under a mutex, exactly the
    [Stats.per_domain] pattern): the hot path increments plain fields no
    other domain touches, and {!snapshot} sums the cells — a commutative
    reduction, so a serial run and a 4-domain run of the same work produce
    identical snapshots at quiescence. Gauges are read-time callbacks
    (e.g. a pager shard's hit rate computed from its counters at scrape).

    Registration is idempotent for counters and histograms (the existing
    collector is returned, so components re-created across environments
    share one series) and last-wins for gauges (a fresh component's
    callback replaces its predecessor's). *)

type counter
type histogram

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** Get or create the counter named [name] with [labels]. *)

val inc : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Sum over all domains' cells. *)

val gauge :
  ?help:string -> ?labels:(string * string) list -> string ->
  (unit -> float) -> unit
(** Register a callback gauge, replacing any previous one of the same
    (name, labels). The callback runs at scrape/snapshot time. *)

val histogram :
  ?help:string -> ?labels:(string * string) list -> ?base:float ->
  string -> histogram
(** Get or create a log-bucketed histogram: bucket upper bounds are
    [base * 2^i] (default [base] 0.001, 40 doublings, then +inf). *)

val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_quantile : histogram -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile (q in [0,1]) from the
    aggregated log2 buckets, linearly interpolated inside the containing
    bucket; [nan] when empty. The relative error is bounded by the bucket
    width (a factor of 2), so p50/p90/p99 read as order-of-magnitude-exact
    tail estimates, not sample statistics. *)

val quantile_of : base:float -> (float * int) list -> int -> float -> float
(** The same estimator over exported data: non-cumulative (upper-bound,
    count) pairs in ascending order (as in {!value}'s [Histogram]), total
    count, and the histogram's bucket [base] (needed to place the first
    bucket's lower bound at 0). Used by the time-series layer to compute
    windowed quantiles from delta-encoded buckets. *)

val export_quantiles : float list
(** The quantiles every histogram exports ([0.5; 0.9; 0.99]). *)

(** {2 Export} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of
      { base : float; buckets : (float * int) list; sum : float; count : int }
      (** [buckets] are (upper-bound, count) pairs, non-cumulative,
          zero-count buckets omitted; the +inf bound prints as [inf];
          [base] is the log2 bucket base for quantile reconstruction. *)

val snapshot : unit -> ((string * (string * string) list) * value) list
(** Every collector's aggregated value, sorted by (name, labels) — the
    structure the serial-vs-parallel equality test compares. *)

val to_json : unit -> string
(** The snapshot as a JSON array of collector objects. Histograms carry a
    ["quantiles"] object with the {!export_quantiles} estimates. *)

val to_prometheus : unit -> string
(** Prometheus text exposition (version 0.0.4): HELP/TYPE comments,
    cumulative [_bucket{le=...}] series plus [_sum]/[_count], and
    [<name>_quantile{q="..."}] gauges for {!export_quantiles}. *)

val reset : unit -> unit
(** Zero every counter and histogram cell (gauges are stateless). Call at
    quiescent points only. *)
