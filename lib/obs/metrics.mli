(** Counters, gauges and log-bucketed histograms with per-domain cells.

    Collectors live in a process-global registry keyed by (name, labels).
    Counters and histograms store their values in {e per-domain cells}
    (domain-local records registered under a mutex, exactly the
    [Stats.per_domain] pattern): the hot path increments plain fields no
    other domain touches, and {!snapshot} sums the cells — a commutative
    reduction, so a serial run and a 4-domain run of the same work produce
    identical snapshots at quiescence. Gauges are read-time callbacks
    (e.g. a pager shard's hit rate computed from its counters at scrape).

    Registration is idempotent for counters and histograms (the existing
    collector is returned, so components re-created across environments
    share one series) and last-wins for gauges (a fresh component's
    callback replaces its predecessor's). *)

type counter
type histogram

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** Get or create the counter named [name] with [labels]. *)

val inc : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Sum over all domains' cells. *)

val gauge :
  ?help:string -> ?labels:(string * string) list -> string ->
  (unit -> float) -> unit
(** Register a callback gauge, replacing any previous one of the same
    (name, labels). The callback runs at scrape/snapshot time. *)

val histogram :
  ?help:string -> ?labels:(string * string) list -> ?base:float ->
  string -> histogram
(** Get or create a log-bucketed histogram: bucket upper bounds are
    [base * 2^i] (default [base] 0.001, 40 doublings, then +inf). *)

val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

(** {2 Export} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (float * int) list; sum : float; count : int }
      (** [buckets] are (upper-bound, count) pairs, non-cumulative,
          zero-count buckets omitted; the +inf bound prints as [inf]. *)

val snapshot : unit -> ((string * (string * string) list) * value) list
(** Every collector's aggregated value, sorted by (name, labels) — the
    structure the serial-vs-parallel equality test compares. *)

val to_json : unit -> string
(** The snapshot as a JSON array of collector objects. *)

val to_prometheus : unit -> string
(** Prometheus text exposition (version 0.0.4): HELP/TYPE comments,
    cumulative [_bucket{le=...}] series plus [_sum]/[_count]. *)

val reset : unit -> unit
(** Zero every counter and histogram cell (gauges are stateless). Call at
    quiescent points only. *)
