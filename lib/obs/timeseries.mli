(** Delta-encoded metric time-series over the registry, in a fixed ring.

    Every {!tick} takes one {!Metrics.snapshot} and appends a slot to each
    series: counters and histogram buckets/sum/count store the {e increase}
    since the last tick, gauges the sampled value. Ticks are stamped with
    both clocks — wall ms and the global simulated-ms source
    ({!Clock.sim_ms}) — so windowed queries can trail either; SLO windows
    use sim-ms for determinism under the I/O cost model.

    The idle cost is one float compare in {!maybe_tick}; nothing here has
    its own thread. Queries address series by metric name plus a {e label
    subset} and sum across every match, so ["svr_shed_total"] with no
    labels aggregates the whole family.

    Capacity note: at the default 100 ms interval, 600 slots retain one
    minute of wall history; benches that want 5 m/1 h sim windows create
    their own instance with the capacity/interval to match. *)

type t

type clock = Wall | Sim

val create : ?capacity:int -> ?interval_ms:float -> unit -> t
(** A fresh ring ([capacity] ticks, default 600) snapshotting every
    [interval_ms] of wall time (default 100) when driven via
    {!maybe_tick}. *)

val shared : unit -> t
(** The process-wide instance (default parameters) that the serving layer
    ticks and the shell's [.series] reads. *)

val tick : t -> unit
(** Snapshot the registry into the next slot now, unconditionally. Tests
    drive deterministic sequences with this plus an injected
    {!Clock.set_sim_source}. Do not call from a gauge callback. *)

val maybe_tick : t -> unit
(** {!tick} iff [interval_ms] of wall time elapsed since the last one;
    otherwise a single float compare. Sprinkled on serving hot paths
    (dispatcher loop, statement boundary) — cheap enough for both. *)

val ticks : t -> int
(** Ticks currently retained (at most the capacity). *)

val interval_ms : t -> float
val set_interval_ms : t -> float -> unit

(** {2 Windowed queries}

    All windows trail from the newest tick on the chosen clock (default
    [Sim]). [labels] is a subset filter; matching series are summed. *)

val increase : ?clock:clock -> ?labels:(string * string) list ->
  t -> string -> window_ms:float -> float
(** Total increase of a cumulative metric over the window — a counter's
    value, or a histogram's observation count. [0.] when unknown. *)

val rate : ?clock:clock -> ?labels:(string * string) list ->
  t -> string -> window_ms:float -> float
(** {!increase} per second, over the span the window actually covers
    (shorter than [window_ms] while the ring is still filling). *)

val last : ?labels:(string * string) list -> t -> string -> float
(** Latest sampled gauge value (summed across matches); [nan] if the
    metric is not a gauge or no tick has run. *)

val quantile : ?clock:clock -> ?labels:(string * string) list ->
  t -> string -> window_ms:float -> float -> float
(** Bucket-quantile estimate of a histogram metric over the window,
    via {!Metrics.quantile_of} on the reassembled bucket deltas; [nan]
    when no observations fell inside the window. *)

val points : ?labels:(string * string) list ->
  t -> string -> (float * float * float) list
(** Raw per-tick points (wall ms, sim ms, value), oldest first: per-tick
    increases for cumulative metrics, samples for gauges — the [.series]
    table. *)

val names : t -> string list
(** Metric names with at least one retained series, sorted. *)

val clear : t -> unit
