(** Slow-query retention and span-tree rendering.

    {!install} hooks {!Trace.on_root_finish}: whenever a trace's root span
    finishes with a wall duration at or above the threshold, the full span
    tree is copied out of the ring buffers and retained (bounded, oldest
    dropped). {!render} turns any trace's events into the indented tree the
    shell prints for [.explain] — span name, wall/simulated durations, and
    attributes, with the [stop] attribute surfaced as the "stopped because"
    narrative line. *)

type entry = {
  sl_trace : int;  (** [0] for reason notes, which have no trace *)
  sl_root : Trace.event;
  sl_events : Trace.event list;  (** full tree, sorted by span id *)
  sl_reason : string option;
      (** why the request never ran to completion — the admission verdict
          ("shed: queue_full") or budget trip ("timed_out: deadline");
          [None] for ordinary slow completions *)
}

val install : unit -> unit
(** Idempotent; called by anything that sets or reads the log. *)

val note :
  ?attrs:(string * string) list -> kind:string -> reason:string -> unit -> unit
(** Retain a request that never produced a trace (shed at admission) or
    whose trace was cut short (budget trip): a synthetic one-event entry
    named [kind], tagged [reason], sharing the slow log's bound. *)

val set_threshold_ms : float -> unit
(** Retain traces whose root wall duration is >= this (default 100 ms).
    Installs the hook. *)

val threshold_ms : unit -> float

val entries : unit -> entry list
(** Retained slow queries, most recent first (at most {!capacity}). *)

val capacity : int

val clear : unit -> unit

val render : Trace.event list -> string
(** Indented span tree with per-span wall/sim durations and attributes.
    Spans carrying a [stop] attribute get a trailing narrative line. *)

val render_trace : int -> string
(** [render (Trace.trace_events id)], with a fallback message when the
    trace left no events. *)
