(** Multi-window burn-rate SLO evaluation over the time-series ring.

    An objective's {e burn} is normalized so 1.0 = consuming error budget
    exactly at the objective rate: ratio objectives divide the bad/total
    fraction by the budget, latency objectives divide the windowed
    quantile by the limit, staleness objectives divide the gauge by its
    bound. An alert fires when {e both} the fast (default 5 sim-minute)
    and slow (default 1 sim-hour) windows burn at/above the fire
    threshold, and clears when both are at/below the (lower) clear
    threshold — the Google-SRE multi-window pattern plus hysteresis, so
    steady-state load near the objective does not flap.

    Transitions are triply visible: the
    [svr_slo_transitions_total{slo,to}] counter, a {!Slow_log.note}, and
    — once {!register_health} runs — a [Health] source reporting firing
    alerts as [Warn], which admission reads as [Degraded] pressure. *)

type sel = { sel_name : string; sel_labels : (string * string) list }
(** A metric selector: name plus label-subset filter (summed matches). *)

val sel : ?labels:(string * string) list -> string -> sel

type kind =
  | Ratio of { bad : sel list; total : sel list; budget : float }
      (** increase(bad)/increase(total) against an error-budget fraction *)
  | Latency of { metric : sel; q : float; limit_ms : float }
      (** windowed bucket-quantile of a histogram against a limit *)
  | Staleness of { metric : sel; limit : float }
      (** last gauge sample against a bound (window-independent) *)

type objective = {
  o_name : string;
  o_kind : kind;
  o_fire : float;
  o_clear : float;
}

val objective : ?fire:float -> ?clear:float -> name:string -> kind -> objective
(** [fire] defaults to 1.0, [clear] to [0.75 *. fire]. *)

type status = {
  st_obj : objective;
  st_firing : bool;
  st_fast : float;  (** burn over the fast window at last evaluate *)
  st_slow : float;  (** burn over the slow window at last evaluate *)
}

type t

val create : ?fast_ms:float -> ?slow_ms:float -> Timeseries.t -> t
(** Windows in simulated ms (defaults 5 m / 1 h). *)

val add : t -> objective -> unit
(** Add or replace (by name) an objective, starting in the cleared state. *)

val evaluate : t -> (string * bool) list
(** Re-evaluate every objective against the ring; returns this round's
    transitions as [(name, now_firing)]. Call right after a tick. *)

val status : t -> status list

val firing : t -> string list
(** Names of currently-firing alerts. *)

val register_health : t -> unit
(** Register the ["slo"] health source: firing alerts report [Warn]. *)

val install_defaults :
  ?p99_ms:float -> ?availability:float -> ?degraded_budget:float ->
  ?wal_backlog:float -> t -> unit
(** The four standard objectives (query-class p99 service time,
    availability = 1 − shed rate, degraded-result rate, WAL-backlog
    staleness) plus {!register_health}. *)
