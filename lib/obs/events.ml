(* Bounded audit log of request lifecycles. One record per request,
   emitted at its terminal transition with everything the lifecycle
   accumulated — submit wall time, queue wait, service time, the
   admission or budget verdict, the plan strategy, and the trace id (0
   when unsampled) that links the row to its [.explain] tree. A ring of
   records under one mutex: emission is a lock + array store, far from
   any hot loop (at most once per request), and readers copy out under
   the same lock. Terminal counts also land in
   [svr_events_total{terminal}] so the shell's summary line and the
   serial-vs-parallel equality test read them without walking the ring. *)

type terminal = Shed | Complete | Partial | Timed_out | Failed

let terminal_name = function
  | Shed -> "shed"
  | Complete -> "complete"
  | Partial -> "partial"
  | Timed_out -> "timed_out"
  | Failed -> "failed"

let terminals = [ Shed; Complete; Partial; Timed_out; Failed ]

type record = {
  ev_seq : int; (* emission order, process-global *)
  ev_wall_s : float; (* wall clock at the terminal transition *)
  ev_cls : string; (* admission class: query/update/maintenance/- *)
  ev_terminal : terminal;
  ev_reason : string; (* shed verdict or budget-trip reason, "" if none *)
  ev_strategy : string; (* plan strategy, "" if unplanned *)
  ev_queue_wait_ms : float; (* submit -> dequeue, 0 when never queued *)
  ev_service_ms : float; (* dequeue -> terminal *)
  ev_trace : int; (* trace id for .explain correlation, 0 unsampled *)
}

let capacity = 1024
let mu = Mutex.create ()
let buf : record option array = Array.make capacity None
let pos = ref 0
let seq = ref 0

let terminal_c term =
  Metrics.counter
    ~labels:[ ("terminal", terminal_name term) ]
    ~help:"request lifecycles by terminal state" "svr_events_total"

let emit ?(reason = "") ?(strategy = "") ?(queue_wait_ms = 0.)
    ?(service_ms = 0.) ?(trace = 0) ~cls terminal =
  Metrics.inc (terminal_c terminal);
  Mutex.lock mu;
  incr seq;
  buf.(!pos) <-
    Some
      { ev_seq = !seq; ev_wall_s = Clock.now_s (); ev_cls = cls;
        ev_terminal = terminal; ev_reason = reason; ev_strategy = strategy;
        ev_queue_wait_ms = queue_wait_ms; ev_service_ms = service_ms;
        ev_trace = trace };
  pos := (!pos + 1) mod capacity;
  Mutex.unlock mu

let recent ?(n = capacity) () =
  Mutex.lock mu;
  let out = ref [] in
  (* newest first: walk backwards from the last written slot *)
  (try
     for i = 1 to capacity do
       if List.length !out >= n then raise Exit;
       match buf.((!pos - i + (2 * capacity)) mod capacity) with
       | Some r -> out := r :: !out
       | None -> raise Exit
     done
   with Exit -> ());
  Mutex.unlock mu;
  List.rev !out

let counts () =
  List.map (fun t -> (t, Metrics.counter_value (terminal_c t))) terminals

let clear () =
  Mutex.lock mu;
  Array.fill buf 0 capacity None;
  pos := 0;
  seq := 0;
  Mutex.unlock mu

(* -- rendering ------------------------------------------------------------ *)

let render ?(n = 16) () =
  let b = Buffer.create 512 in
  let rows = recent ~n () in
  Buffer.add_string b
    (Printf.sprintf "%-6s %-12s %-11s %9s %9s %6s  %s\n" "seq" "class"
       "terminal" "wait ms" "svc ms" "trace" "reason");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-6d %-12s %-11s %9.2f %9.2f %6s  %s\n" r.ev_seq
           r.ev_cls
           (terminal_name r.ev_terminal)
           r.ev_queue_wait_ms r.ev_service_ms
           (if r.ev_trace = 0 then "-" else string_of_int r.ev_trace)
           (match (r.ev_reason, r.ev_strategy) with
           | "", "" -> "-"
           | "", s -> "plan=" ^ s
           | re, "" -> re
           | re, s -> re ^ " plan=" ^ s)))
    rows;
  let cs =
    counts ()
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (t, n) -> Printf.sprintf "%s=%d" (terminal_name t) n)
  in
  if cs <> [] then
    Buffer.add_string b ("totals: " ^ String.concat " " cs ^ "\n");
  Buffer.contents b
