(* A fixed ring of periodic registry snapshots, delta-encoded per series.

   Each [tick] walks [Metrics.snapshot] once and appends one slot to every
   series: counters, histogram buckets and histogram sum/count store the
   increase since the previous tick (cumulative inputs, delta storage);
   gauges store the sampled value. Both clocks are stamped per tick — wall
   ms and the global simulated-ms source ([Clock.sim_ms]) — so windowed
   queries can trail either one: benches and SLO windows use sim-ms for
   determinism, the shell uses wall.

   The idle path is one float compare: [maybe_tick] returns immediately
   until the wall interval elapses, and nothing else runs periodically.
   Queries and ticks share one mutex; ticks are rare (default 100 ms) and
   queries walk plain float arrays, so contention is negligible.

   A series is keyed by (metric name, labels, part) where part separates
   a histogram's per-bucket series from its sum/count and from plain
   counter/gauge values. Queries address series by name plus a label
   subset and sum across every match — asking for ["svr_shed_total"] with
   no labels aggregates over {class, reason}, mirroring a PromQL sum. *)

type part = Value | Sum | Count | Bucket of float

type series = {
  se_key : (string * (string * string) list) * part;
  se_base : float; (* histogram bucket base; 0. for counters/gauges *)
  se_cumulative : bool; (* true: input is cumulative, slots store deltas *)
  se_vals : float array; (* ring-aligned with the tick timestamp arrays *)
  mutable se_last : float; (* last cumulative input, for delta encoding *)
}

type t = {
  capacity : int;
  mutable interval : float; (* wall ms between maybe_tick snapshots *)
  mu : Mutex.t;
  wall : float array; (* tick timestamps, wall ms *)
  sim : float array; (* tick timestamps, simulated ms *)
  mutable pos : int; (* next write slot *)
  mutable n : int; (* ticks retained, <= capacity *)
  mutable last_wall : float; (* last tick wall ms, for maybe_tick *)
  series : ((string * (string * string) list) * part, series) Hashtbl.t;
}

type clock = Wall | Sim

let default_capacity = 600
let default_interval_ms = 100.

let create ?(capacity = default_capacity) ?(interval_ms = default_interval_ms)
    () =
  { capacity; interval = interval_ms; mu = Mutex.create ();
    wall = Array.make capacity 0.; sim = Array.make capacity 0.; pos = 0;
    n = 0; last_wall = neg_infinity; series = Hashtbl.create 64 }

let interval_ms t = t.interval
let set_interval_ms t ms = t.interval <- ms
let ticks t = t.n

let get_series t key base cumulative =
  match Hashtbl.find_opt t.series key with
  | Some s -> s
  | None ->
      let s =
        { se_key = key; se_base = base; se_cumulative = cumulative;
          se_vals = Array.make t.capacity 0.; se_last = Float.nan }
      in
      Hashtbl.replace t.series key s;
      s

(* A cumulative sample: first sight is a baseline (delta 0, so a series
   born mid-flight does not report its whole history as one spike); a
   sample below the last one is a registry reset, counted from zero. *)
let put_cum s pos v =
  let d =
    if Float.is_nan s.se_last then 0.
    else if v < s.se_last then v
    else v -. s.se_last
  in
  s.se_last <- v;
  s.se_vals.(pos) <- d

let tick_locked t ~wall_ms ~sim_ms =
  let pos = t.pos in
  (* a series absent from this snapshot contributes nothing this tick *)
  Hashtbl.iter (fun _ s -> s.se_vals.(pos) <- 0.) t.series;
  List.iter
    (fun ((name, labels), v) ->
      match v with
      | Metrics.Counter n ->
          put_cum
            (get_series t ((name, labels), Value) 0. true)
            pos (float_of_int n)
      | Metrics.Gauge g ->
          let s = get_series t ((name, labels), Value) 0. false in
          s.se_vals.(pos) <- (if Float.is_nan g then 0. else g)
      | Metrics.Histogram { base; buckets; sum; count } ->
          (* zero-count buckets are omitted from snapshots, so a bucket
             series can be born ticks after its histogram. If the
             histogram was already tracked, the bucket's history is a
             known zero — delta from 0, don't swallow its first counts
             as an unknown-history baseline *)
          let hist_known = Hashtbl.mem t.series ((name, labels), Count) in
          put_cum (get_series t ((name, labels), Sum) base true) pos sum;
          put_cum
            (get_series t ((name, labels), Count) base true)
            pos (float_of_int count);
          List.iter
            (fun (le, n) ->
              let key = ((name, labels), Bucket le) in
              let fresh = not (Hashtbl.mem t.series key) in
              let s = get_series t key base true in
              if fresh && hist_known then s.se_last <- 0.;
              put_cum s pos (float_of_int n))
            buckets)
    (Metrics.snapshot ());
  t.wall.(pos) <- wall_ms;
  t.sim.(pos) <- sim_ms;
  t.pos <- (pos + 1) mod t.capacity;
  t.n <- min (t.n + 1) t.capacity;
  t.last_wall <- wall_ms

let tick t =
  let wall_ms = Clock.now_ms () and sim_ms = Clock.sim_ms () in
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () -> tick_locked t ~wall_ms ~sim_ms)

let maybe_tick t =
  if Clock.now_ms () -. t.last_wall >= t.interval then tick t

(* -- windowed queries ----------------------------------------------------- *)

let clock_arr t = function Wall -> t.wall | Sim -> t.sim

(* Fold [f acc slot] over the retained ticks (oldest first) whose clock
   timestamp lies inside the trailing window, returning the fold result
   and the actual span covered: newest timestamp minus the boundary (the
   last excluded tick, or the oldest retained one). *)
let fold_window t clock ~window_ms f acc =
  if t.n = 0 then (acc, 0.)
  else begin
    let ts = clock_arr t clock in
    let newest = ts.((t.pos - 1 + t.capacity) mod t.capacity) in
    let cutoff = newest -. window_ms in
    let acc = ref acc and span_start = ref None in
    for i = 0 to t.n - 1 do
      let slot = (t.pos - t.n + i + (2 * t.capacity)) mod t.capacity in
      if ts.(slot) > cutoff then begin
        if !span_start = None then
          (* boundary: the tick just before the first included one *)
          span_start :=
            Some
              (if i = 0 then ts.(slot)
               else ts.((slot - 1 + t.capacity) mod t.capacity));
        acc := f !acc slot
      end
    done;
    let span = match !span_start with None -> 0. | Some s -> newest -. s in
    (!acc, span)
  end

let label_subset sub labels =
  List.for_all (fun (k, v) -> List.assoc_opt k labels = Some v) sub

let matching t name labels pred =
  Hashtbl.fold
    (fun ((n, ls), part) s acc ->
      if String.equal n name && label_subset labels ls && pred part then
        s :: acc
      else acc)
    t.series []

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Total increase of a cumulative metric over the trailing window: a
   counter's Value series, or a histogram's Count (its request count). *)
let increase ?(clock = Sim) ?(labels = []) t name ~window_ms =
  with_lock t (fun () ->
      let ss =
        matching t name labels (function
          | Value -> true
          | Count -> true
          | _ -> false)
      in
      let ss = List.filter (fun s -> s.se_cumulative) ss in
      fst
        (fold_window t clock ~window_ms
           (fun acc slot ->
             List.fold_left (fun a s -> a +. s.se_vals.(slot)) acc ss)
           0.))

(* Per-second rate over the span the window actually covers (shorter than
   [window_ms] while history is still filling). *)
let rate ?(clock = Sim) ?(labels = []) t name ~window_ms =
  with_lock t (fun () ->
      let ss =
        matching t name labels (function
          | Value -> true
          | Count -> true
          | _ -> false)
      in
      let ss = List.filter (fun s -> s.se_cumulative) ss in
      let total, span =
        fold_window t clock ~window_ms
          (fun acc slot ->
            List.fold_left (fun a s -> a +. s.se_vals.(slot)) acc ss)
          0.
      in
      if span <= 0. then 0. else total /. (span /. 1000.))

(* Latest sampled value of a gauge (summed across matching label sets). *)
let last ?(labels = []) t name =
  with_lock t (fun () ->
      if t.n = 0 then Float.nan
      else begin
        let slot = (t.pos - 1 + t.capacity) mod t.capacity in
        let ss =
          matching t name labels (function Value -> true | _ -> false)
        in
        let ss = List.filter (fun s -> not s.se_cumulative) ss in
        match ss with
        | [] -> Float.nan
        | _ -> List.fold_left (fun a s -> a +. s.se_vals.(slot)) 0. ss
      end)

(* Quantile estimate over the window: reassemble a bucket distribution
   from the per-tick bucket deltas of every matching histogram series and
   run the shared log2 interpolator on it. *)
let quantile ?(clock = Sim) ?(labels = []) t name ~window_ms q =
  with_lock t (fun () ->
      let ss = matching t name labels (function Bucket _ -> true | _ -> false) in
      match ss with
      | [] -> Float.nan
      | s0 :: _ ->
          let tbl = Hashtbl.create 16 in
          let (), _ =
            fold_window t clock ~window_ms
              (fun () slot ->
                List.iter
                  (fun s ->
                    let le =
                      match snd s.se_key with Bucket le -> le | _ -> 0.
                    in
                    let prev =
                      Option.value ~default:0. (Hashtbl.find_opt tbl le)
                    in
                    Hashtbl.replace tbl le (prev +. s.se_vals.(slot)))
                  ss)
              ()
          in
          let buckets =
            Hashtbl.fold (fun le n acc -> (le, int_of_float n) :: acc) tbl []
            |> List.filter (fun (_, n) -> n > 0)
            |> List.sort compare
          in
          let count = List.fold_left (fun a (_, n) -> a + n) 0 buckets in
          Metrics.quantile_of ~base:s0.se_base buckets count q)

(* The raw per-tick points of a metric (summed across matching series),
   oldest first — the shell's [.series] table. Cumulative metrics yield
   per-tick increases, gauges their samples. *)
let points ?(labels = []) t name =
  with_lock t (fun () ->
      let ss =
        matching t name labels (function
          | Value -> true
          | Count -> true
          | _ -> false)
      in
      (* a histogram contributes its Count; a counter/gauge its Value *)
      let ss =
        match List.filter (fun s -> snd s.se_key = Value) ss with
        | [] -> ss
        | vs -> vs
      in
      let out = ref [] in
      for i = t.n - 1 downto 0 do
        let slot = (t.pos - t.n + i + (2 * t.capacity)) mod t.capacity in
        let v = List.fold_left (fun a s -> a +. s.se_vals.(slot)) 0. ss in
        out := (t.wall.(slot), t.sim.(slot), v) :: !out
      done;
      !out)

let names t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun ((n, _), _) _ acc -> if List.mem n acc then acc else n :: acc)
        t.series []
      |> List.sort compare)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.series;
      t.pos <- 0;
      t.n <- 0;
      t.last_wall <- neg_infinity)

(* The process-wide instance the serving layer ticks and the shell reads. *)
let default = lazy (create ())
let shared () = Lazy.force default
