(** Bounded structured audit log of request lifecycles.

    Every request emits exactly one record at its terminal transition —
    [Submitted → Admitted/Shed → Dequeued → Complete/Partial/Timed_out] —
    carrying what the lifecycle accumulated: queue wait, service time,
    the admission or budget verdict, the plan strategy, and the trace id
    correlating the row with its [.explain] tree. Records live in a
    {!capacity}-slot ring (oldest overwritten); terminal counts are also
    exported as [svr_events_total{terminal}]. *)

type terminal = Shed | Complete | Partial | Timed_out | Failed

val terminal_name : terminal -> string

type record = {
  ev_seq : int;  (** emission order, process-global *)
  ev_wall_s : float;  (** wall seconds at the terminal transition *)
  ev_cls : string;  (** admission class (query/update/maintenance), or [-] *)
  ev_terminal : terminal;
  ev_reason : string;  (** shed verdict or budget-trip reason; [""] *)
  ev_strategy : string;  (** plan strategy; [""] when unplanned *)
  ev_queue_wait_ms : float;  (** submit → dequeue; 0 when never queued *)
  ev_service_ms : float;  (** dequeue → terminal *)
  ev_trace : int;  (** trace id for [.explain] correlation; 0 unsampled *)
}

val emit :
  ?reason:string -> ?strategy:string -> ?queue_wait_ms:float ->
  ?service_ms:float -> ?trace:int -> cls:string -> terminal -> unit
(** Record a terminal transition: one ring store plus one counter bump. *)

val recent : ?n:int -> unit -> record list
(** The most recent [n] records (default: all retained), newest first. *)

val counts : unit -> (terminal * int) list
(** Per-terminal totals since process start (counter-backed, unbounded —
    they survive ring wrap). *)

val render : ?n:int -> unit -> string
(** The [.events] table: the last [n] (default 16) records plus totals. *)

val capacity : int

val clear : unit -> unit
(** Empty the ring (the counters are left to {!Metrics.reset}). *)
