(** System health as an ordered state machine with asymmetric hysteresis.

    Layers above register named report sources (breaker state, queue
    occupancy, burn-rate alerts, maintenance debt); {!evaluate} — called
    from the serving tick — folds them: any [Fail] → [Critical], else any
    [Warn] → [Degraded reasons], else [Healthy]. Worse states are adopted
    immediately; recovery needs [recover_after] (default 3) consecutive
    better evaluations, so admission tiers do not flap around a hovering
    threshold. Transitions bump [svr_health_transitions_total{to}] and the
    current severity is exported as the [svr_health_state] gauge. *)

type report = Ok | Warn of string | Fail of string
type state = Healthy | Degraded of string list | Critical

val severity : state -> int
(** [Healthy] 0, [Degraded] 1, [Critical] 2. *)

val to_string : state -> string

val register_source : string -> (unit -> report) -> unit
(** Add or replace the source named [name]. Callbacks run on every
    {!evaluate}, outside this module's lock; a raising callback reads as
    [Fail]. *)

val unregister_source : string -> unit

val set_recover_after : int -> unit
(** Consecutive better evaluations required before the state improves
    (clamped to >= 1; default 3). *)

val evaluate : unit -> state
(** Poll every source and fold, applying hysteresis; returns (and caches)
    the resulting state. *)

val current : unit -> state
(** The cached state from the last {!evaluate} — what {!Admission} reads
    per request, without polling anything. *)

val reset : unit -> unit
(** Drop all sources and return to [Healthy] (tests). *)
