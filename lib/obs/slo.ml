(* Declarative SLOs evaluated as multi-window burn rates over the
   time-series ring, Google-SRE style: an alert fires only when BOTH the
   fast window (default 5 sim-minutes) and the slow window (default 1
   sim-hour) burn above the fire threshold — the fast window gives
   detection latency, the slow window immunity to blips — and clears only
   when both drop below a separate, lower clear threshold (hysteresis).
   Windows are measured in simulated ms so alert sequences are
   deterministic under the I/O cost model, and meaningful in benches that
   compress hours into seconds.

   Burn is normalized so 1.0 means "consuming error budget exactly at the
   objective's rate": a ratio objective divides the observed bad/total
   fraction by its budget; a latency objective divides the windowed
   quantile by its limit; a staleness objective divides the gauge by its
   bound. Transitions land in three places — the
   [svr_slo_transitions_total{slo,to}] counter (the bench's flap count),
   a slow-log note, and the registered health source that turns firing
   alerts into [Degraded] pressure on admission. *)

type sel = { sel_name : string; sel_labels : (string * string) list }

let sel ?(labels = []) name = { sel_name = name; sel_labels = labels }

type kind =
  | Ratio of { bad : sel list; total : sel list; budget : float }
  | Latency of { metric : sel; q : float; limit_ms : float }
  | Staleness of { metric : sel; limit : float }

type objective = {
  o_name : string;
  o_kind : kind;
  o_fire : float; (* burn at/above which both windows must sit to fire *)
  o_clear : float; (* burn at/below which both windows must sit to clear *)
}

let objective ?(fire = 1.0) ?clear ~name kind =
  let clear = match clear with Some c -> c | None -> 0.75 *. fire in
  { o_name = name; o_kind = kind; o_fire = fire; o_clear = clear }

type status = {
  st_obj : objective;
  st_firing : bool;
  st_fast : float; (* burn over the fast window *)
  st_slow : float; (* burn over the slow window *)
}

type entry = { e_obj : objective; mutable e_firing : bool;
               mutable e_fast : float; mutable e_slow : float }

type t = {
  ts : Timeseries.t;
  fast_ms : float;
  slow_ms : float;
  mu : Mutex.t;
  mutable entries : entry list;
}

let default_fast_ms = 5. *. 60. *. 1000. (* 5 sim-minutes *)
let default_slow_ms = 60. *. 60. *. 1000. (* 1 sim-hour *)

let create ?(fast_ms = default_fast_ms) ?(slow_ms = default_slow_ms) ts =
  { ts; fast_ms; slow_ms; mu = Mutex.create (); entries = [] }

let add t o =
  Mutex.lock t.mu;
  let kept =
    List.filter (fun e -> not (String.equal e.e_obj.o_name o.o_name)) t.entries
  in
  t.entries <-
    kept @ [ { e_obj = o; e_firing = false; e_fast = 0.; e_slow = 0. } ];
  Mutex.unlock t.mu

let sum_increase ts sels ~window_ms =
  List.fold_left
    (fun acc s ->
      acc
      +. Timeseries.increase ~labels:s.sel_labels ts s.sel_name ~window_ms)
    0. sels

let burn t kind ~window_ms =
  match kind with
  | Ratio { bad; total; budget } ->
      let tot = sum_increase t.ts total ~window_ms in
      if tot <= 0. then 0.
      else sum_increase t.ts bad ~window_ms /. tot /. budget
  | Latency { metric; q; limit_ms } ->
      let p =
        Timeseries.quantile ~labels:metric.sel_labels t.ts metric.sel_name
          ~window_ms q
      in
      if Float.is_nan p then 0. else p /. limit_ms
  | Staleness { metric; limit } ->
      let v = Timeseries.last ~labels:metric.sel_labels t.ts metric.sel_name in
      if Float.is_nan v then 0. else v /. limit

let transition_c ~slo ~to_ =
  Metrics.counter
    ~labels:[ ("slo", slo); ("to", to_) ]
    ~help:"SLO alert transitions" "svr_slo_transitions_total"

(* Evaluate every objective against the current ring; returns the
   transitions this round as (name, now_firing). Call after a tick. *)
let evaluate t =
  Mutex.lock t.mu;
  let es = t.entries in
  Mutex.unlock t.mu;
  List.filter_map
    (fun e ->
      let fast = burn t e.e_obj.o_kind ~window_ms:t.fast_ms in
      let slow = burn t e.e_obj.o_kind ~window_ms:t.slow_ms in
      e.e_fast <- fast;
      e.e_slow <- slow;
      let was = e.e_firing in
      let now =
        if was then not (fast <= e.e_obj.o_clear && slow <= e.e_obj.o_clear)
        else fast >= e.e_obj.o_fire && slow >= e.e_obj.o_fire
      in
      if now <> was then begin
        e.e_firing <- now;
        let to_ = if now then "firing" else "ok" in
        Metrics.inc (transition_c ~slo:e.e_obj.o_name ~to_);
        Slow_log.note
          ~attrs:
            [ ("fast_burn", Printf.sprintf "%.2f" fast);
              ("slow_burn", Printf.sprintf "%.2f" slow) ]
          ~kind:("slo:" ^ e.e_obj.o_name)
          ~reason:
            (if now then "alert firing: error budget burning too fast"
             else "alert cleared")
          ();
        Some (e.e_obj.o_name, now)
      end
      else None)
    es

let status t =
  Mutex.lock t.mu;
  let es = t.entries in
  Mutex.unlock t.mu;
  List.map
    (fun e ->
      { st_obj = e.e_obj; st_firing = e.e_firing; st_fast = e.e_fast;
        st_slow = e.e_slow })
    es

let firing t =
  status t
  |> List.filter_map (fun s -> if s.st_firing then Some s.st_obj.o_name else None)

(* Turn firing alerts into health pressure: the admission loop reads the
   folded state, so a burning error budget tightens shedding one tier. *)
let register_health t =
  Health.register_source "slo" (fun () ->
      match firing t with
      | [] -> Health.Ok
      | names -> Health.Warn ("slo burning: " ^ String.concat "," names))

(* The four standard objectives over the serving layer's metric names.
   [p99_ms] is the per-class service-time objective (queue wait included);
   availability counts sheds against all admission verdicts; the degraded
   budget bounds budget-tripped queries; [wal_backlog] bounds checkpoint
   staleness in un-truncated WAL records. *)
let install_defaults ?(p99_ms = 50.) ?(availability = 0.999)
    ?(degraded_budget = 0.05) ?(wal_backlog = 50_000.) t =
  add t
    (objective ~name:"query_p99"
       (Latency
          { metric = sel ~labels:[ ("class", "query") ] "svr_server_service_ms";
            q = 0.99; limit_ms = p99_ms }));
  add t
    (objective ~fire:14.4 ~name:"availability"
       (Ratio
          { bad = [ sel "svr_shed_total" ];
            total = [ sel "svr_shed_total"; sel "svr_admitted_total" ];
            budget = 1. -. availability }));
  add t
    (objective ~fire:2.0 ~name:"degraded_rate"
       (Ratio
          { bad = [ sel "svr_degraded_total" ];
            total = [ sel "svr_query_wall_ms" ];
            budget = degraded_budget }));
  add t
    (objective ~name:"wal_staleness"
       (Staleness { metric = sel "svr_wal_backlog_records"; limit = wal_backlog }));
  register_health t
